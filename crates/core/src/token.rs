//! Token streams (§3.1, "Stop Tokens").
//!
//! A STeP stream is logically zero or more rank-`N` tensors. The logical
//! structure is embedded with *stop tokens*: `Stop(k)` (`S_k`, `k >= 1`)
//! marks the end of the `k` innermost dimensions, with only the
//! highest-level stop emitted at coincident boundaries, and `Done`
//! terminates the stream. A rank-0 stream carries bare values.
//!
//! Example (paper equation (1)): the rank-2 stream
//! `1, 2, S1, 3, S2, 4, S1, 5, 6, 7, S2, D` holds two `[2, D0]` tensors
//! with a ragged innermost dimension.

use crate::elem::Elem;
use crate::error::{Result, StepError};
use std::fmt;

/// One token of a STeP stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A data element.
    Val(Elem),
    /// End of the `level` innermost dimensions (`S_level`, `level >= 1`).
    Stop(u8),
    /// End of the stream.
    Done,
}

impl Token {
    /// Whether this token is a value.
    pub fn is_val(&self) -> bool {
        matches!(self, Token::Val(_))
    }

    /// The stop level, if this is a stop token.
    pub fn stop_level(&self) -> Option<u8> {
        match self {
            Token::Stop(l) => Some(*l),
            _ => None,
        }
    }

    /// Conservative O(1)-ish equality for run-length coalescing: two
    /// value tokens coalesce when their elements are provably
    /// interchangeable ([`Elem::coalesces_with`]). Structural tokens
    /// never coalesce — stop-token discipline forbids adjacent stops, so
    /// runs of length > 1 only ever carry repeated values.
    pub fn coalesces_with(&self, other: &Token) -> bool {
        match (self, other) {
            (Token::Val(a), Token::Val(b)) => a.coalesces_with(b),
            _ => false,
        }
    }

    /// Unwraps the value.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Malformed`] if this is not a `Val`.
    pub fn into_val(self) -> Result<Elem> {
        match self {
            Token::Val(e) => Ok(e),
            other => Err(StepError::Malformed(format!("expected value, got {other}"))),
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Val(e) => write!(f, "{e}"),
            Token::Stop(l) => write!(f, "S{l}"),
            Token::Done => write!(f, "D"),
        }
    }
}

/// Summary statistics of a validated token stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Number of `Val` tokens.
    pub values: u64,
    /// Number of rank-`rank` tensors (top-level stop count; equals
    /// `values` for rank-0 streams).
    pub tensors: u64,
    /// Count of stop tokens per level (index 0 unused).
    pub stops: Vec<u64>,
}

/// Validates stop-token discipline for a stream of the given rank and
/// returns summary statistics.
///
/// Rules checked:
/// - stop levels lie in `1..=rank`;
/// - the stream ends with `Done`, and `Done` appears only at the end;
/// - no two consecutive stop tokens (coincident boundaries must be
///   absorbed into the highest-level stop);
/// - a non-empty stream's final token before `Done` is `Stop(rank)` (for
///   rank ≥ 1): every tensor is closed;
/// - the stream does not begin with a stop.
///
/// # Errors
///
/// Returns [`StepError::Malformed`] describing the first violation.
pub fn validate(tokens: &[Token], rank: u8) -> Result<StreamStats> {
    let mut stats = StreamStats {
        stops: vec![0; rank as usize + 1],
        ..StreamStats::default()
    };
    let mut prev_was_stop = true; // disallows a leading stop
    let mut done_seen = false;
    for (i, t) in tokens.iter().enumerate() {
        if done_seen {
            return Err(StepError::Malformed(format!("token {i} after Done: {t}")));
        }
        match t {
            Token::Val(_) => {
                stats.values += 1;
                if rank == 0 {
                    stats.tensors += 1;
                }
                prev_was_stop = false;
            }
            Token::Stop(l) => {
                if *l == 0 || *l > rank {
                    return Err(StepError::Malformed(format!(
                        "stop level {l} out of range for rank {rank} (token {i})"
                    )));
                }
                if prev_was_stop {
                    return Err(StepError::Malformed(format!(
                        "consecutive stop tokens at {i} (unabsorbed boundary)"
                    )));
                }
                stats.stops[*l as usize] += 1;
                if *l == rank {
                    stats.tensors += 1;
                }
                prev_was_stop = true;
            }
            Token::Done => {
                if rank > 0 && !prev_was_stop && stats.values > 0 {
                    return Err(StepError::Malformed(format!(
                        "stream of rank {rank} must close with Stop({rank}) before Done"
                    )));
                }
                done_seen = true;
            }
        }
    }
    if !done_seen {
        return Err(StepError::Malformed("stream missing Done".into()));
    }
    if rank > 0
        && let Some(&top) = stats.stops.get(rank as usize)
        && stats.values > 0
        && top == 0
    {
        return Err(StepError::Malformed(format!(
            "non-empty rank-{rank} stream has no Stop({rank})"
        )));
    }
    Ok(stats)
}

/// Builds a well-formed rank-1 token stream from a vector of elements
/// split into groups: each group becomes one rank-1 tensor.
pub fn rank1_from_groups(groups: &[Vec<Elem>]) -> Vec<Token> {
    let mut out = Vec::new();
    for g in groups {
        for e in g {
            out.push(Token::Val(e.clone()));
        }
        out.push(Token::Stop(1));
    }
    out.push(Token::Done);
    out
}

/// Builds a rank-0 token stream (bare values, then `Done`).
pub fn rank0_from_values(vals: impl IntoIterator<Item = Elem>) -> Vec<Token> {
    let mut out: Vec<Token> = vals.into_iter().map(Token::Val).collect();
    out.push(Token::Done);
    out
}

/// Builds a rank-2 stream from tensors of row groups.
pub fn rank2_from_tensors(tensors: &[Vec<Vec<Elem>>]) -> Vec<Token> {
    let mut out = Vec::new();
    for t in tensors {
        for (ri, row) in t.iter().enumerate() {
            for e in row {
                out.push(Token::Val(e.clone()));
            }
            if ri + 1 < t.len() {
                out.push(Token::Stop(1));
            }
        }
        out.push(Token::Stop(2));
    }
    out.push(Token::Done);
    out
}

/// Extracts all values from a token stream, ignoring structure.
pub fn values(tokens: &[Token]) -> Vec<&Elem> {
    tokens
        .iter()
        .filter_map(|t| match t {
            Token::Val(e) => Some(e),
            _ => None,
        })
        .collect()
}

/// An incremental builder for well-formed token streams of a given rank.
///
/// Emits values with [`TokenStreamBuilder::val`] and closes dimension
/// boundaries with [`TokenStreamBuilder::stop`]; coincident boundaries are
/// the caller's responsibility (use the highest level). `finish` appends
/// `Done` and validates.
///
/// # Examples
///
/// ```
/// use step_core::token::TokenStreamBuilder;
/// use step_core::elem::Elem;
/// let mut b = TokenStreamBuilder::new(1);
/// b.val(Elem::Addr(1)).val(Elem::Addr(2)).stop(1);
/// let tokens = b.finish().unwrap();
/// assert_eq!(tokens.len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct TokenStreamBuilder {
    rank: u8,
    tokens: Vec<Token>,
}

impl TokenStreamBuilder {
    /// A builder for a stream of the given rank.
    pub fn new(rank: u8) -> Self {
        TokenStreamBuilder {
            rank,
            tokens: Vec::new(),
        }
    }

    /// Appends a value token.
    pub fn val(&mut self, e: Elem) -> &mut Self {
        self.tokens.push(Token::Val(e));
        self
    }

    /// Appends a stop token of the given level.
    pub fn stop(&mut self, level: u8) -> &mut Self {
        self.tokens.push(Token::Stop(level));
        self
    }

    /// Appends `Done`, validates, and returns the tokens.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Malformed`] if the stream violates stop-token
    /// discipline for its rank.
    pub fn finish(mut self) -> Result<Vec<Token>> {
        self.tokens.push(Token::Done);
        validate(&self.tokens, self.rank)?;
        Ok(self.tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u64) -> Token {
        Token::Val(Elem::Addr(x))
    }

    #[test]
    fn paper_example_stream_validates() {
        // 1,2,S1,3,S2,4,S1,5,6,7,S2,D — shape [2, 2, D0]
        let s = vec![
            v(1),
            v(2),
            Token::Stop(1),
            v(3),
            Token::Stop(2),
            v(4),
            Token::Stop(1),
            v(5),
            v(6),
            v(7),
            Token::Stop(2),
            Token::Done,
        ];
        let stats = validate(&s, 2).unwrap();
        assert_eq!(stats.values, 7);
        assert_eq!(stats.tensors, 2);
        assert_eq!(stats.stops[1], 2);
        assert_eq!(stats.stops[2], 2);
    }

    #[test]
    fn empty_stream_is_valid() {
        let stats = validate(&[Token::Done], 3).unwrap();
        assert_eq!(stats.values, 0);
        assert_eq!(stats.tensors, 0);
    }

    #[test]
    fn rank0_stream() {
        let s = rank0_from_values([Elem::Addr(1), Elem::Addr(2)]);
        let stats = validate(&s, 0).unwrap();
        assert_eq!(stats.values, 2);
        assert_eq!(stats.tensors, 2);
    }

    #[test]
    fn rejects_out_of_range_stop() {
        let s = vec![v(1), Token::Stop(3), Token::Done];
        assert!(validate(&s, 2).is_err());
        let s = vec![v(1), Token::Stop(0), Token::Done];
        assert!(validate(&s, 2).is_err());
    }

    #[test]
    fn rejects_consecutive_stops() {
        let s = vec![v(1), Token::Stop(1), Token::Stop(2), Token::Done];
        assert!(validate(&s, 2).is_err());
    }

    #[test]
    fn rejects_leading_stop() {
        let s = vec![Token::Stop(1), Token::Done];
        assert!(validate(&s, 1).is_err());
    }

    #[test]
    fn rejects_unclosed_tensor() {
        let s = vec![v(1), Token::Done];
        assert!(validate(&s, 1).is_err());
    }

    #[test]
    fn rejects_tokens_after_done() {
        let s = vec![v(1), Token::Stop(1), Token::Done, v(2)];
        assert!(validate(&s, 1).is_err());
    }

    #[test]
    fn rejects_missing_done() {
        let s = vec![v(1), Token::Stop(1)];
        assert!(validate(&s, 1).is_err());
    }

    #[test]
    fn rank1_builder_roundtrip() {
        let groups = vec![vec![Elem::Addr(1), Elem::Addr(2)], vec![Elem::Addr(3)]];
        let s = rank1_from_groups(&groups);
        let stats = validate(&s, 1).unwrap();
        assert_eq!(stats.tensors, 2);
        assert_eq!(values(&s).len(), 3);
    }

    #[test]
    fn rank2_builder_absorbs_final_row_stop() {
        let s = rank2_from_tensors(&[vec![
            vec![Elem::Addr(1), Elem::Addr(2)],
            vec![Elem::Addr(3)],
        ]]);
        // 1,2,S1,3,S2,D — the final row's S1 is absorbed into S2.
        assert_eq!(
            s,
            vec![
                v(1),
                v(2),
                Token::Stop(1),
                v(3),
                Token::Stop(2),
                Token::Done
            ]
        );
        validate(&s, 2).unwrap();
    }

    #[test]
    fn builder_validates_on_finish() {
        let mut b = TokenStreamBuilder::new(2);
        b.val(Elem::Addr(1)).stop(1).stop(2);
        assert!(b.finish().is_err());
    }
}
