//! Stream shape semantics (§3.1).
//!
//! A rank-`N` stream has a shape `[D_N, ..., D_1, D_0]` with `N + 1`
//! entries: `D_N` counts the rank-`N` tensors in the stream and
//! `D_{N-1}..D_0` are the tensor dimensions. Each dimension is
//! *static-regular*, *dynamic-regular* (a data-dependent constant), or
//! *ragged* (varies across slices). Ragged dimensions *absorb*: any
//! arithmetic combining a ragged dimension yields a fresh ragged symbol
//! (flattening `[2, D0_ragged]` gives `[D0']`, not `[2*D0]`).

use crate::error::{Result, StepError};
use std::fmt;
use step_symbolic::{Env, Expr, Symbol, SymbolTable};

/// One dimension of a stream (or buffer/tile) shape.
///
/// # Examples
///
/// ```
/// use step_core::shape::Dim;
/// use step_symbolic::SymbolTable;
///
/// let mut syms = SymbolTable::new();
/// let d = Dim::dyn_regular(syms.fresh("D"));
/// assert!(d.is_dynamic());
/// assert!(!d.is_ragged());
/// assert_eq!(Dim::fixed(4).as_static(), Some(4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Dim {
    /// Compile-time constant size.
    Static(u64),
    /// Data-dependent but constant across slices, tracked by a symbol or
    /// an expression over symbols (e.g. `⌈D/4⌉`).
    DynRegular(Expr),
    /// Varies across slices. The expression names the symbol standing for
    /// the (set of) sizes; the absorbing rule applies in arithmetic.
    Ragged(Expr),
}

impl Dim {
    /// A static dimension of size `n`.
    pub fn fixed(n: u64) -> Dim {
        Dim::Static(n)
    }

    /// A dynamic-regular dimension named by `sym`.
    pub fn dyn_regular(sym: Symbol) -> Dim {
        Dim::DynRegular(Expr::Sym(sym))
    }

    /// A ragged dimension named by `sym`.
    pub fn ragged(sym: Symbol) -> Dim {
        Dim::Ragged(Expr::Sym(sym))
    }

    /// The symbolic size of this dimension.
    pub fn expr(&self) -> Expr {
        match self {
            Dim::Static(n) => Expr::Const(*n as i64),
            Dim::DynRegular(e) | Dim::Ragged(e) => e.clone(),
        }
    }

    /// Returns the size if static.
    pub fn as_static(&self) -> Option<u64> {
        match self {
            Dim::Static(n) => Some(*n),
            _ => None,
        }
    }

    /// Whether the dimension is data-dependent (dynamic-regular or ragged).
    pub fn is_dynamic(&self) -> bool {
        !matches!(self, Dim::Static(_))
    }

    /// Whether the dimension is ragged.
    pub fn is_ragged(&self) -> bool {
        matches!(self, Dim::Ragged(_))
    }

    /// Multiplies two dimensions, applying the ragged absorbing rule: if
    /// either side is ragged the product is a fresh ragged symbol minted
    /// from `syms` (§3.1).
    pub fn multiply(&self, other: &Dim, syms: &mut SymbolTable) -> Dim {
        match (self, other) {
            (Dim::Static(a), Dim::Static(b)) => Dim::Static(a * b),
            (a, b) if a.is_ragged() || b.is_ragged() => Dim::Ragged(Expr::Sym(syms.fresh("Drag"))),
            (a, b) => Dim::DynRegular((a.expr() * b.expr()).simplify()),
        }
    }

    /// `⌈self / chunk⌉`, preserving dynamism class. A ragged dimension
    /// stays ragged (fresh symbol); a dynamic-regular dimension becomes a
    /// `ceil` expression; a static dimension folds.
    pub fn ceil_div(&self, chunk: u64, syms: &mut SymbolTable) -> Dim {
        match self {
            Dim::Static(n) => Dim::Static(n.div_ceil(chunk)),
            Dim::DynRegular(e) => Dim::DynRegular(e.clone().ceil_div(chunk as i64)),
            Dim::Ragged(_) => Dim::Ragged(Expr::Sym(syms.fresh("Drag"))),
        }
    }

    /// Evaluates the dimension size under `env`.
    ///
    /// # Errors
    ///
    /// Propagates [`step_symbolic::EvalError`] as a [`StepError::Exec`] if
    /// a symbol is unbound.
    pub fn eval(&self, env: &Env) -> Result<u64> {
        let v = self
            .expr()
            .eval(env)
            .map_err(|e| StepError::Exec(e.to_string()))?;
        u64::try_from(v).map_err(|_| StepError::Exec(format!("negative dimension {v}")))
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dim::Static(n) => write!(f, "{n}"),
            Dim::DynRegular(e) => write!(f, "{e}"),
            Dim::Ragged(e) => write!(f, "{e}~"),
        }
    }
}

impl From<u64> for Dim {
    fn from(n: u64) -> Dim {
        Dim::Static(n)
    }
}

impl From<usize> for Dim {
    fn from(n: usize) -> Dim {
        Dim::Static(n as u64)
    }
}

/// The shape of a stream: `[D_N, ..., D_0]`, outermost first.
///
/// A rank-`N` stream has `N + 1` dimensions (rank = number of stop-token
/// levels). Construct with [`StreamShape::new`] and query with
/// [`StreamShape::rank`] / [`StreamShape::dims`].
///
/// # Examples
///
/// ```
/// use step_core::shape::{Dim, StreamShape};
/// let s = StreamShape::new(vec![Dim::fixed(2), Dim::fixed(2), Dim::fixed(3)]);
/// assert_eq!(s.rank(), 2);
/// assert_eq!(s.dims().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StreamShape {
    dims: Vec<Dim>,
}

impl StreamShape {
    /// Creates a shape from dims listed outermost-first.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty — every stream has at least the outermost
    /// tensor-count dimension.
    pub fn new(dims: Vec<Dim>) -> StreamShape {
        assert!(!dims.is_empty(), "stream shape needs at least one dim");
        StreamShape { dims }
    }

    /// A shape with all-static dims, outermost first.
    pub fn fixed(sizes: &[u64]) -> StreamShape {
        StreamShape::new(sizes.iter().map(|&n| Dim::Static(n)).collect())
    }

    /// The stream rank: number of stop-token levels, `dims.len() - 1`.
    pub fn rank(&self) -> u8 {
        (self.dims.len() - 1) as u8
    }

    /// Dimensions, outermost first.
    pub fn dims(&self) -> &[Dim] {
        &self.dims
    }

    /// The dimension at stop-level `level` (level 0 = innermost).
    ///
    /// # Panics
    ///
    /// Panics if `level > rank`.
    pub fn dim_at_level(&self, level: u8) -> &Dim {
        let idx = self.dims.len() - 1 - level as usize;
        &self.dims[idx]
    }

    /// Replaces the dimension at stop-level `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level > rank`.
    pub fn with_dim_at_level(&self, level: u8, dim: Dim) -> StreamShape {
        let mut dims = self.dims.clone();
        let idx = dims.len() - 1 - level as usize;
        dims[idx] = dim;
        StreamShape { dims }
    }

    /// The `n` outermost dims.
    pub fn outer(&self, n: usize) -> &[Dim] {
        &self.dims[..n]
    }

    /// The `n` innermost dims.
    pub fn inner(&self, n: usize) -> &[Dim] {
        &self.dims[self.dims.len() - n..]
    }

    /// Appends `extra` as new innermost dims (used by operators that add
    /// dimensions, e.g. loads triggered by a reference stream).
    pub fn append_inner(&self, extra: &[Dim]) -> StreamShape {
        let mut dims = self.dims.clone();
        dims.extend_from_slice(extra);
        StreamShape { dims }
    }

    /// Drops the `n` innermost dims (e.g. `Bufferize` with rank `n`).
    ///
    /// # Panics
    ///
    /// Panics if `n >= dims.len()`.
    pub fn drop_inner(&self, n: usize) -> StreamShape {
        assert!(n < self.dims.len(), "cannot drop all dims");
        StreamShape {
            dims: self.dims[..self.dims.len() - n].to_vec(),
        }
    }

    /// Symbolic cardinality `||S||`: the product of all dimension sizes
    /// (§4.2). Ragged dims contribute their symbol (interpreted as the
    /// *total* across slices when measured).
    pub fn cardinality(&self) -> Expr {
        Expr::product_of(self.dims.iter().map(Dim::expr))
    }

    /// Flattens the dimensions between stop-levels `min..=max` into one
    /// dimension at level `min`, applying the ragged absorbing rule.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Shape`] if `min >= max` or `max > rank`.
    pub fn flatten(&self, min: u8, max: u8, syms: &mut SymbolTable) -> Result<StreamShape> {
        if min >= max {
            return Err(StepError::Shape(format!(
                "flatten needs min < max, got {min}..{max}"
            )));
        }
        if max > self.rank() {
            return Err(StepError::Shape(format!(
                "flatten level {max} exceeds rank {}",
                self.rank()
            )));
        }
        let lo = self.dims.len() - 1 - max as usize;
        let hi = self.dims.len() - 1 - min as usize;
        let mut merged = self.dims[lo].clone();
        for d in &self.dims[lo + 1..=hi] {
            merged = merged.multiply(d, syms);
        }
        let mut dims = Vec::with_capacity(self.dims.len() - (max - min) as usize);
        dims.extend_from_slice(&self.dims[..lo]);
        dims.push(merged);
        dims.extend_from_slice(&self.dims[hi + 1..]);
        Ok(StreamShape { dims })
    }

    /// Whether every dimension is static.
    pub fn is_static(&self) -> bool {
        self.dims.iter().all(|d| !d.is_dynamic())
    }

    /// Whether any dimension is ragged.
    pub fn has_ragged(&self) -> bool {
        self.dims.iter().any(Dim::is_ragged)
    }
}

impl fmt::Display for StreamShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{d}")?;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_and_levels() {
        let s = StreamShape::fixed(&[2, 3, 4]);
        assert_eq!(s.rank(), 2);
        assert_eq!(s.dim_at_level(0), &Dim::fixed(4));
        assert_eq!(s.dim_at_level(2), &Dim::fixed(2));
    }

    #[test]
    fn cardinality_static() {
        let s = StreamShape::fixed(&[2, 3, 4]);
        assert_eq!(s.cardinality(), Expr::Const(24));
    }

    #[test]
    fn flatten_static() {
        let mut syms = SymbolTable::new();
        let s = StreamShape::fixed(&[2, 3, 4]);
        let f = s.flatten(0, 1, &mut syms).unwrap();
        assert_eq!(f, StreamShape::fixed(&[2, 12]));
    }

    #[test]
    fn flatten_ragged_absorbs() {
        // Example (1) in the paper: flattening [2, 2, D0~] yields [2, D0'~]
        // with a fresh ragged symbol, not [2, 2*D0].
        let mut syms = SymbolTable::new();
        let d0 = syms.fresh("D0");
        let s = StreamShape::new(vec![Dim::fixed(2), Dim::fixed(2), Dim::ragged(d0)]);
        let f = s.flatten(0, 1, &mut syms).unwrap();
        assert_eq!(f.rank(), 1);
        assert!(f.dim_at_level(0).is_ragged());
        assert_ne!(f.dim_at_level(0), s.dim_at_level(0));
    }

    #[test]
    fn flatten_dynamic_regular_multiplies() {
        let mut syms = SymbolTable::new();
        let d = syms.fresh("D");
        let s = StreamShape::new(vec![
            Dim::fixed(2),
            Dim::dyn_regular(d.clone()),
            Dim::fixed(4),
        ]);
        let f = s.flatten(0, 1, &mut syms).unwrap();
        let mut env = Env::new();
        env.bind(&d, 5);
        assert_eq!(f.dim_at_level(0).eval(&env).unwrap(), 20);
    }

    #[test]
    fn flatten_bad_range_errors() {
        let mut syms = SymbolTable::new();
        let s = StreamShape::fixed(&[2, 3]);
        assert!(s.flatten(1, 1, &mut syms).is_err());
        assert!(s.flatten(0, 2, &mut syms).is_err());
    }

    #[test]
    fn ceil_div_classes() {
        let mut syms = SymbolTable::new();
        assert_eq!(Dim::fixed(10).ceil_div(4, &mut syms), Dim::fixed(3));
        let d = syms.fresh("D");
        let dr = Dim::dyn_regular(d.clone()).ceil_div(4, &mut syms);
        let mut env = Env::new();
        env.bind(&d, 10);
        assert_eq!(dr.eval(&env).unwrap(), 3);
        assert!(!dr.is_ragged());
        let rg = Dim::ragged(syms.fresh("R")).ceil_div(4, &mut syms);
        assert!(rg.is_ragged());
    }

    #[test]
    fn append_and_drop_inner() {
        let s = StreamShape::fixed(&[2]);
        let s2 = s.append_inner(&[Dim::fixed(1), Dim::fixed(4)]);
        assert_eq!(s2, StreamShape::fixed(&[2, 1, 4]));
        assert_eq!(s2.drop_inner(2), s);
    }

    #[test]
    fn with_dim_at_level_replaces() {
        let mut syms = SymbolTable::new();
        let s = StreamShape::fixed(&[10, 1]);
        let d = syms.fresh("Di");
        let s2 = s.with_dim_at_level(1, Dim::ragged(d));
        assert_eq!(s2.dim_at_level(0), &Dim::fixed(1));
        assert!(s2.dim_at_level(1).is_ragged());
    }

    #[test]
    fn display_marks_ragged() {
        let mut syms = SymbolTable::new();
        let s = StreamShape::new(vec![Dim::fixed(2), Dim::ragged(syms.fresh("D"))]);
        let txt = s.to_string();
        assert!(txt.starts_with("[2, D#"));
        assert!(txt.ends_with("~]"));
    }
}
