//! The hardware-function algebra supplied to higher-order operators
//! (§3.2.4).
//!
//! STeP's higher-order operators (`Map`, `Accum`, `Scan`, `FlatMap`) take a
//! "function supported by the hardware" as an argument. We model those
//! functions as closed enums rather than closures so that every backend
//! (the cycle-approximate simulator, the fine-grained reference simulator,
//! and the symbolic metric equations) can interpret them consistently —
//! both for *values* (dense tiles) and for *cost* (FLOPs derived from tile
//! shapes, as required by the paper's roofline timing model, §4.3).

use crate::elem::Elem;
use crate::error::{Result, StepError};
use crate::tile::Tile;

/// Unary elementwise operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EwOp {
    /// SiLU (swish) activation, the gate of SwiGLU.
    Silu,
    /// Rectified linear unit.
    Relu,
    /// Exponential.
    Exp,
    /// Identity (useful as a rate-limited pass-through).
    Identity,
    /// Multiply by a constant.
    Scale(f32),
}

impl EwOp {
    fn apply(self, x: f32) -> f32 {
        match self {
            EwOp::Silu => x / (1.0 + (-x).exp()),
            EwOp::Relu => x.max(0.0),
            EwOp::Exp => x.exp(),
            EwOp::Identity => x,
            EwOp::Scale(a) => a * x,
        }
    }

    /// Modeled FLOPs per element.
    pub fn flops_per_elem(self) -> u64 {
        match self {
            EwOp::Silu => 4,
            EwOp::Exp => 2,
            EwOp::Relu | EwOp::Scale(_) => 1,
            EwOp::Identity => 0,
        }
    }
}

/// Binary elementwise operations over equal-shaped tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Elementwise sum.
    Add,
    /// Elementwise product.
    Mul,
    /// `silu(a) * b` — the fused SwiGLU gate (one hardware function in the
    /// paper's SwiGLU validation workload, §4.5).
    SiluMul,
}

impl BinOp {
    fn apply(self, a: &Tile, b: &Tile) -> Result<Tile> {
        match self {
            BinOp::Add => a.add(b),
            BinOp::Mul => a.mul(b),
            BinOp::SiluMul => a.map_values(|x| x / (1.0 + (-x).exp())).mul(b),
        }
    }

    /// Modeled FLOPs per element.
    pub fn flops_per_elem(self) -> u64 {
        match self {
            BinOp::Add | BinOp::Mul => 1,
            BinOp::SiluMul => 5,
        }
    }
}

/// Row-wise reductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reduce {
    /// Row sums.
    Sum,
    /// Row maxima.
    Max,
}

/// Functions usable with `Map`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MapFn {
    /// `(A [m,k], B [k,n]) -> A x B [m,n]` over a tuple stream.
    Matmul,
    /// `(A [m,k], B [n,k]) -> A x Bᵀ [m,n]` over a tuple stream.
    MatmulBt,
    /// Unary elementwise function on tiles.
    Elementwise(EwOp),
    /// Binary elementwise function over a tuple of equal-shaped tiles.
    Binary(BinOp),
    /// Row-wise reduction `[m,n] -> [m,1]`.
    RowReduce(Reduce),
}

impl MapFn {
    /// Applies the function to a stream element.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::ElemType`] for inadmissible element variants
    /// and [`StepError::Exec`] for shape mismatches.
    pub fn apply(&self, e: &Elem) -> Result<Elem> {
        match self {
            MapFn::Matmul => {
                let (a, b) = tuple2(e)?;
                Ok(Elem::Tile(a.matmul(b)?))
            }
            MapFn::MatmulBt => {
                let (a, b) = tuple2(e)?;
                Ok(Elem::Tile(a.matmul_bt(b)?))
            }
            MapFn::Elementwise(op) => {
                let t = e.as_tile()?;
                Ok(Elem::Tile(t.map_values(|x| op.apply(x))))
            }
            MapFn::Binary(op) => {
                let (a, b) = tuple2(e)?;
                Ok(Elem::Tile(op.apply(a, b)?))
            }
            MapFn::RowReduce(r) => {
                let t = e.as_tile()?;
                Ok(Elem::Tile(match r {
                    Reduce::Sum => t.row_reduce(0.0, |a, b| a + b),
                    Reduce::Max => t.row_reduce(f32::NEG_INFINITY, f32::max),
                }))
            }
        }
    }

    /// Modeled FLOPs to process one element (the `total FLOPs` term of the
    /// roofline equation in §4.3, computed inside the supplied function as
    /// it depends on the computation performed).
    pub fn flops(&self, e: &Elem) -> u64 {
        match self {
            MapFn::Matmul => match tuple2(e) {
                Ok((a, b)) => 2 * (a.rows() * a.cols() * b.cols()) as u64,
                Err(_) => 0,
            },
            MapFn::MatmulBt => match tuple2(e) {
                Ok((a, b)) => 2 * (a.rows() * a.cols() * b.rows()) as u64,
                Err(_) => 0,
            },
            MapFn::Elementwise(op) => match e.as_tile() {
                Ok(t) => op.flops_per_elem() * t.len() as u64,
                Err(_) => 0,
            },
            MapFn::Binary(op) => match tuple2(e) {
                Ok((a, _)) => op.flops_per_elem() * a.len() as u64,
                Err(_) => 0,
            },
            MapFn::RowReduce(_) => match e.as_tile() {
                Ok(t) => t.len() as u64,
                Err(_) => 0,
            },
        }
    }
}

/// Update functions usable with `Accum` and `Scan`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccumFn {
    /// Concatenate tiles vertically: packs row-tiles into a larger tile
    /// (paper's `RetileRow`).
    RetileRow,
    /// Concatenate tiles horizontally (paper's `RetileCol`).
    RetileCol,
    /// Elementwise accumulation of equal-shaped tiles (inner-product
    /// matmul partial sums).
    AddTiles,
}

impl AccumFn {
    /// Folds `x` into the accumulator `acc` (which starts as `None`).
    ///
    /// # Errors
    ///
    /// Returns [`StepError::ElemType`]/[`StepError::Exec`] on inadmissible
    /// inputs.
    pub fn update(&self, acc: Option<Tile>, x: &Elem) -> Result<Tile> {
        let t = x.as_tile()?;
        match acc {
            None => Ok(t.clone()),
            Some(a) => match self {
                AccumFn::RetileRow => a.concat_rows(t),
                AccumFn::RetileCol => a.concat_cols(t),
                AccumFn::AddTiles => a.add(t),
            },
        }
    }

    /// Modeled FLOPs for folding one element.
    pub fn flops(&self, x: &Elem) -> u64 {
        match (self, x.as_tile()) {
            (AccumFn::AddTiles, Ok(t)) => t.len() as u64,
            // Retiling is data movement, not arithmetic.
            _ => 0,
        }
    }
}

/// Functions usable with `FlatMap`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlatMapFn {
    /// Splits a tile row-wise into `⌈rows/chunk⌉` tiles of `chunk` rows
    /// (last chunk may be short), emitted as one rank-1 tensor (paper's
    /// `RetileStreamify`).
    SplitRows {
        /// Rows per output tile.
        chunk: usize,
    },
    /// Splits a tile column-wise into `⌈cols/chunk⌉` tiles of `chunk`
    /// columns, emitted as one rank-1 tensor (hierarchical tiling of the
    /// reduction dimension, Appendix B.2).
    SplitCols {
        /// Columns per output tile.
        chunk: usize,
    },
}

impl FlatMapFn {
    /// Expands one element into a rank-`b` block of tokens, returned as
    /// the list of inner tensors (for `SplitRows`, a single tensor: the
    /// list of row chunks).
    ///
    /// # Errors
    ///
    /// Returns [`StepError::ElemType`] for non-tile inputs or
    /// [`StepError::Config`] for a zero chunk.
    pub fn expand(&self, e: &Elem) -> Result<Vec<Vec<Elem>>> {
        match self {
            FlatMapFn::SplitRows { chunk } => {
                if *chunk == 0 {
                    return Err(StepError::Config("SplitRows chunk must be > 0".into()));
                }
                let t = e.as_tile()?;
                let mut out = Vec::new();
                let mut r = 0;
                while r < t.rows() {
                    let n = (*chunk).min(t.rows() - r);
                    out.push(Elem::Tile(t.row_slice(r, n)?));
                    r += n;
                }
                Ok(vec![out])
            }
            FlatMapFn::SplitCols { chunk } => {
                if *chunk == 0 {
                    return Err(StepError::Config("SplitCols chunk must be > 0".into()));
                }
                let t = e.as_tile()?;
                let mut out = Vec::new();
                let mut c = 0;
                while c < t.cols() {
                    let n = (*chunk).min(t.cols() - c);
                    out.push(Elem::Tile(t.col_slice(c, n)?));
                    c += n;
                }
                Ok(vec![out])
            }
        }
    }

    /// The rank of the block produced per element.
    pub fn block_rank(&self) -> u8 {
        match self {
            FlatMapFn::SplitRows { .. } | FlatMapFn::SplitCols { .. } => 1,
        }
    }
}

fn tuple2(e: &Elem) -> Result<(&Tile, &Tile)> {
    let t = e.as_tuple()?;
    if t.len() != 2 {
        return Err(StepError::ElemType(format!(
            "expected 2-tuple, got {} elements",
            t.len()
        )));
    }
    Ok((t[0].as_tile()?, t[1].as_tile()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(a: Tile, b: Tile) -> Elem {
        Elem::Tuple(vec![Elem::Tile(a), Elem::Tile(b)])
    }

    #[test]
    fn matmul_map_fn() {
        let e = pair(
            Tile::identity(2),
            Tile::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]),
        );
        let out = MapFn::Matmul.apply(&e).unwrap();
        assert_eq!(
            out.as_tile().unwrap().values().unwrap(),
            &[1.0, 2.0, 3.0, 4.0]
        );
        assert_eq!(MapFn::Matmul.flops(&e), 2 * 2 * 2 * 2);
    }

    #[test]
    fn silu_is_sigmoid_weighted() {
        let t = Tile::from_rows(&[&[0.0]]);
        let out = MapFn::Elementwise(EwOp::Silu)
            .apply(&Elem::Tile(t))
            .unwrap();
        assert!((out.as_tile().unwrap().get(0, 0).unwrap() - 0.0).abs() < 1e-6);
        let t = Tile::from_rows(&[&[10.0]]);
        let out = MapFn::Elementwise(EwOp::Silu)
            .apply(&Elem::Tile(t))
            .unwrap();
        assert!((out.as_tile().unwrap().get(0, 0).unwrap() - 10.0).abs() < 1e-2);
    }

    #[test]
    fn silu_mul_fuses() {
        let a = Tile::from_rows(&[&[10.0]]);
        let b = Tile::from_rows(&[&[3.0]]);
        let out = MapFn::Binary(BinOp::SiluMul).apply(&pair(a, b)).unwrap();
        assert!((out.as_tile().unwrap().get(0, 0).unwrap() - 30.0).abs() < 0.1);
    }

    #[test]
    fn row_reduce_max() {
        let t = Tile::from_rows(&[&[1.0, 5.0], &[2.0, -3.0]]);
        let out = MapFn::RowReduce(Reduce::Max).apply(&Elem::Tile(t)).unwrap();
        assert_eq!(out.as_tile().unwrap().values().unwrap(), &[5.0, 2.0]);
    }

    #[test]
    fn map_fn_rejects_wrong_elem() {
        assert!(MapFn::Matmul.apply(&Elem::Bool(true)).is_err());
        assert!(MapFn::Elementwise(EwOp::Relu).apply(&Elem::Unit).is_err());
        let triple = Elem::Tuple(vec![Elem::Unit, Elem::Unit, Elem::Unit]);
        assert!(MapFn::Matmul.apply(&triple).is_err());
    }

    #[test]
    fn accum_retile_row_packs() {
        let acc = AccumFn::RetileRow
            .update(None, &Elem::Tile(Tile::from_rows(&[&[1.0, 2.0]])))
            .unwrap();
        let acc = AccumFn::RetileRow
            .update(Some(acc), &Elem::Tile(Tile::from_rows(&[&[3.0, 4.0]])))
            .unwrap();
        assert_eq!((acc.rows(), acc.cols()), (2, 2));
        assert_eq!(acc.values().unwrap(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn accum_add_tiles() {
        let a = Tile::splat(2, 2, 1.0);
        let acc = AccumFn::AddTiles
            .update(None, &Elem::Tile(a.clone()))
            .unwrap();
        let acc = AccumFn::AddTiles
            .update(Some(acc), &Elem::Tile(a.clone()))
            .unwrap();
        assert_eq!(acc.values().unwrap(), &[2.0; 4]);
        assert_eq!(AccumFn::AddTiles.flops(&Elem::Tile(a)), 4);
        assert_eq!(AccumFn::RetileRow.flops(&Elem::Tile(Tile::zeros(2, 2))), 0);
    }

    #[test]
    fn flatmap_split_rows() {
        let t = Tile::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0], &[5.0]]);
        let blocks = FlatMapFn::SplitRows { chunk: 2 }
            .expand(&Elem::Tile(t))
            .unwrap();
        assert_eq!(blocks.len(), 1);
        let chunks = &blocks[0];
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].as_tile().unwrap().rows(), 2);
        assert_eq!(chunks[2].as_tile().unwrap().rows(), 1); // short tail
    }

    #[test]
    fn flatmap_split_cols() {
        let t = Tile::from_rows(&[&[1.0, 2.0, 3.0]]);
        let blocks = FlatMapFn::SplitCols { chunk: 2 }
            .expand(&Elem::Tile(t))
            .unwrap();
        let chunks = &blocks[0];
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].as_tile().unwrap().values().unwrap(), &[1.0, 2.0]);
        assert_eq!(chunks[1].as_tile().unwrap().values().unwrap(), &[3.0]);
    }

    #[test]
    fn flatmap_zero_chunk_is_config_error() {
        let r = FlatMapFn::SplitRows { chunk: 0 }.expand(&Elem::Tile(Tile::zeros(1, 1)));
        assert!(matches!(r, Err(StepError::Config(_))));
    }

    #[test]
    fn phantom_flops_match_dense() {
        let dense = pair(Tile::zeros(4, 64), Tile::zeros(64, 256));
        let phantom = pair(Tile::phantom(4, 64), Tile::phantom(64, 256));
        assert_eq!(MapFn::Matmul.flops(&dense), MapFn::Matmul.flops(&phantom));
        let out = MapFn::Matmul.apply(&phantom).unwrap();
        assert!(out.as_tile().unwrap().is_phantom());
    }
}
