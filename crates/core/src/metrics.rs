//! Symbolic performance-metric equations (§4.2).
//!
//! The symbolic frontend derives, per operator, expressions for **off-chip
//! memory traffic** and **on-chip memory requirement**; summing them over
//! the program graph gives whole-program metrics. When dynamic dimensions
//! are present the expressions contain symbols, which are substituted with
//! simulator measurements afterwards ("handling data dependencies").
//!
//! Equations (paper §4.2):
//! - off-chip traffic: `||output stream|| * |output dtype|` for loads,
//!   `||input stream|| * |input dtype|` for stores, zero elsewhere;
//! - on-chip memory: `|out dtype| * 2` for off-chip operators (double
//!   buffering), `|in dtype| + ||buffer|| * |in dtype| * 2` for
//!   `Bufferize`, `|out dtype|` for `Accum`/`Scan`/`Expand`, and
//!   `16 * in_tile_col * bytes + |weight tile| + |out tile|` for matmul
//!   `Map`/`Accum` (the 16 mirrors the decomposition into the hardware's
//!   16x16 compute tiles).

use crate::DTYPE_BYTES;
use crate::elem::ElemKind;
use crate::func::MapFn;
use crate::graph::{Graph, Node};
use crate::ops::OpKind;
use step_symbolic::{Env, Expr};

/// Symbolic metrics of a single node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeMetrics {
    /// Off-chip traffic in bytes.
    pub offchip_traffic: Expr,
    /// On-chip memory requirement in bytes.
    pub onchip_memory: Expr,
}

/// Symbolic metrics of a whole program graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphMetrics {
    /// Per-node metrics, indexed like `graph.nodes()`.
    pub per_node: Vec<NodeMetrics>,
    /// Total off-chip traffic in bytes.
    pub offchip_traffic: Expr,
    /// Total on-chip memory requirement in bytes.
    pub onchip_memory: Expr,
}

impl GraphMetrics {
    /// Evaluates both totals under `env` (with dynamic symbols bound to
    /// simulator measurements).
    ///
    /// # Errors
    ///
    /// Returns [`crate::StepError::Exec`] if symbols remain unbound.
    pub fn eval(&self, env: &Env) -> crate::Result<(u64, u64)> {
        let t = self
            .offchip_traffic
            .eval(env)
            .map_err(|e| crate::StepError::Exec(e.to_string()))?;
        let m = self
            .onchip_memory
            .eval(env)
            .map_err(|e| crate::StepError::Exec(e.to_string()))?;
        Ok((t.max(0) as u64, m.max(0) as u64))
    }
}

/// Computes the symbolic metrics of `graph`.
pub fn analyze(graph: &Graph) -> GraphMetrics {
    let per_node: Vec<NodeMetrics> = graph
        .nodes()
        .iter()
        .map(|n| node_metrics(graph, n))
        .collect();
    let offchip_traffic = Expr::sum_of(per_node.iter().map(|m| m.offchip_traffic.clone()));
    let onchip_memory = Expr::sum_of(per_node.iter().map(|m| m.onchip_memory.clone()));
    GraphMetrics {
        per_node,
        offchip_traffic,
        onchip_memory,
    }
}

fn out_edge(graph: &Graph, node: &Node, port: usize) -> Option<(Expr, ElemKind)> {
    node.outputs.get(port).map(|e| {
        let edge = graph.edge(*e);
        (edge.shape.cardinality(), edge.kind.clone())
    })
}

fn in_edge(graph: &Graph, node: &Node, port: usize) -> Option<(Expr, ElemKind)> {
    node.inputs.get(port).map(|e| {
        let edge = graph.edge(*e);
        (edge.shape.cardinality(), edge.kind.clone())
    })
}

/// Matmul on-chip footprint: `16 * in_tile_col * bytes + |weight tile| +
/// |out tile|` (out tile only for `Accum`).
fn matmul_memory(in_kind: &ElemKind, out_kind: &ElemKind, include_out: bool) -> Expr {
    let (a, b) = match in_kind {
        ElemKind::Tuple(v) if v.len() == 2 => (&v[0], &v[1]),
        _ => return out_kind.bytes(),
    };
    let in_tile_col = match a.as_tile_dims() {
        Ok((_, c)) => c.expr(),
        Err(_) => Expr::from(0u64),
    };
    let partial_in = Expr::from(16u64) * in_tile_col * Expr::from(DTYPE_BYTES);
    let weight = b.bytes();
    let out = if include_out {
        out_kind.bytes()
    } else {
        Expr::from(0u64)
    };
    partial_in + weight + out
}

fn node_metrics(graph: &Graph, node: &Node) -> NodeMetrics {
    let zero = Expr::from(0u64);
    match &node.op {
        OpKind::LinearLoad(_) | OpKind::RandomLoad(_) => {
            let (card, kind) = out_edge(graph, node, 0).expect("load has an output");
            NodeMetrics {
                offchip_traffic: card * kind.bytes(),
                onchip_memory: out_edge(graph, node, 0)
                    .map(|(_, k)| k.bytes() * Expr::from(2u64))
                    .unwrap_or_else(|| zero.clone()),
            }
        }
        OpKind::LinearStore { .. } => {
            let (card, kind) = in_edge(graph, node, 0).expect("store has an input");
            NodeMetrics {
                offchip_traffic: card * kind.bytes(),
                onchip_memory: in_edge(graph, node, 0)
                    .map(|(_, k)| k.bytes() * Expr::from(2u64))
                    .unwrap_or_else(|| zero.clone()),
            }
        }
        OpKind::RandomStore(_) => {
            // Port 1 carries the write data.
            let (card, kind) = in_edge(graph, node, 1).expect("store has data input");
            NodeMetrics {
                offchip_traffic: card * kind.bytes(),
                onchip_memory: in_edge(graph, node, 1)
                    .map(|(_, k)| k.bytes() * Expr::from(2u64))
                    .unwrap_or_else(|| zero.clone()),
            }
        }
        OpKind::Bufferize { .. } => {
            let (_, in_kind) = in_edge(graph, node, 0).expect("bufferize input");
            let (_, out_kind) = out_edge(graph, node, 0).expect("bufferize output");
            let buffered = out_kind.buffer_bytes();
            NodeMetrics {
                offchip_traffic: zero.clone(),
                onchip_memory: in_kind.bytes() + buffered * Expr::from(2u64),
            }
        }
        OpKind::Map { func, .. } => {
            let mem = match func {
                MapFn::Matmul | MapFn::MatmulBt => {
                    let (_, in_kind) = in_edge(graph, node, 0).expect("map input");
                    let (_, out_kind) = out_edge(graph, node, 0).expect("map output");
                    matmul_memory(&in_kind, &out_kind, false)
                }
                _ => zero.clone(),
            };
            NodeMetrics {
                offchip_traffic: zero.clone(),
                onchip_memory: mem,
            }
        }
        OpKind::Accum { .. } | OpKind::Scan { .. } => {
            let (_, out_kind) = out_edge(graph, node, 0).expect("accum output");
            NodeMetrics {
                offchip_traffic: zero.clone(),
                onchip_memory: out_kind.bytes(),
            }
        }
        OpKind::Expand { .. } | OpKind::ExpandStatic { .. } => {
            let (_, out_kind) = out_edge(graph, node, 0).expect("expand output");
            NodeMetrics {
                offchip_traffic: zero.clone(),
                onchip_memory: out_kind.bytes(),
            }
        }
        // Everything else streams without materialization.
        _ => NodeMetrics {
            offchip_traffic: zero.clone(),
            onchip_memory: zero,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::ops::LinearLoadCfg;

    #[test]
    fn load_traffic_counts_rereads() {
        // A 64x256 BF16 tensor read 3 times: traffic = 3 * 64*256*2 bytes.
        let mut g = GraphBuilder::new();
        let r = g.unit_source(3);
        let tiles = g
            .linear_offchip_load(&r, LinearLoadCfg::new(0, (64, 256), (64, 64)))
            .unwrap();
        g.linear_offchip_store(&tiles, 0x10_0000).unwrap();
        let graph = g.finish();
        let m = analyze(&graph);
        let (traffic, _) = m.eval(&Env::new()).unwrap();
        let tensor_bytes = 64 * 256 * 2;
        // 3 loads + 3 stores of the same tensor.
        assert_eq!(traffic, 6 * tensor_bytes);
    }

    #[test]
    fn offchip_ops_double_buffer() {
        let mut g = GraphBuilder::new();
        let r = g.unit_source(1);
        let tiles = g
            .linear_offchip_load(&r, LinearLoadCfg::new(0, (64, 64), (64, 64)))
            .unwrap();
        g.linear_offchip_store(&tiles, 0).unwrap();
        let graph = g.finish();
        let m = analyze(&graph);
        let (_, mem) = m.eval(&Env::new()).unwrap();
        // load: 2 tiles, store: 2 tiles of 64*64*2 bytes each.
        assert_eq!(mem, 4 * 64 * 64 * 2);
    }

    #[test]
    fn bufferize_memory_includes_double_buffered_capacity() {
        let mut g = GraphBuilder::new();
        let tokens = crate::token::rank1_from_groups(&[vec![
            crate::elem::Elem::Tile(
                crate::tile::Tile::phantom(16, 16)
            );
            4
        ]]);
        let s = g
            .source(
                tokens,
                crate::shape::StreamShape::fixed(&[1, 4]),
                ElemKind::tile(16, 16),
            )
            .unwrap();
        let _bufs = g.bufferize(&s, 1).unwrap();
        let graph = g.finish();
        let m = analyze(&graph);
        let (_, mem) = m.eval(&Env::new()).unwrap();
        let tile = 16 * 16 * 2;
        assert_eq!(mem, tile + 2 * 4 * tile);
    }

    #[test]
    fn matmul_map_memory_rule() {
        let mut g = GraphBuilder::new();
        let a = {
            let tokens = crate::token::rank0_from_values(
                (0..2).map(|_| crate::elem::Elem::Tile(crate::tile::Tile::phantom(4, 64))),
            );
            g.source(
                tokens,
                crate::shape::StreamShape::fixed(&[2]),
                ElemKind::tile(4, 64),
            )
            .unwrap()
        };
        let b = {
            let tokens = crate::token::rank0_from_values(
                (0..2).map(|_| crate::elem::Elem::Tile(crate::tile::Tile::phantom(64, 256))),
            );
            g.source(
                tokens,
                crate::shape::StreamShape::fixed(&[2]),
                ElemKind::tile(64, 256),
            )
            .unwrap()
        };
        let _ = g.map2(&a, &b, MapFn::Matmul, 1024).unwrap();
        let graph = g.finish();
        let m = analyze(&graph);
        let (_, mem) = m.eval(&Env::new()).unwrap();
        // 16 * in_tile_col(64) * 2 + weight tile 64*256*2, no out tile.
        assert_eq!(mem, 16 * 64 * 2 + 64 * 256 * 2);
    }

    #[test]
    fn accum_memory_is_output_dtype() {
        let mut g = GraphBuilder::new();
        let tokens = crate::token::rank1_from_groups(&[vec![
            crate::elem::Elem::Tile(
                crate::tile::Tile::phantom(1, 64)
            );
            4
        ]]);
        let s = g
            .source(
                tokens,
                crate::shape::StreamShape::fixed(&[1, 4]),
                ElemKind::tile(1, 64),
            )
            .unwrap();
        let _ = g.accum(&s, 1, crate::func::AccumFn::RetileRow, 0).unwrap();
        let graph = g.finish();
        let m = analyze(&graph);
        let (_, mem) = m.eval(&Env::new()).unwrap();
        // Accumulator holds the packed 4x64 tile.
        assert_eq!(mem, 4 * 64 * 2);
    }

    #[test]
    fn pure_shape_ops_cost_nothing() {
        let mut g = GraphBuilder::new();
        let s = g.unit_source(4);
        let p = g.promote(&s).unwrap();
        let _ = g.flatten(&p, 0, 1).unwrap();
        let graph = g.finish();
        let m = analyze(&graph);
        let (traffic, mem) = m.eval(&Env::new()).unwrap();
        assert_eq!(traffic, 0);
        assert_eq!(mem, 0);
    }

    #[test]
    fn dynamic_traffic_resolves_with_env() {
        // Weight reloaded ⌈D/4⌉ times: traffic is symbolic until D is
        // measured.
        let mut g = GraphBuilder::new();
        let d = g.symbols().fresh("D");
        let shape = crate::shape::StreamShape::new(vec![crate::shape::Dim::DynRegular(
            step_symbolic::Expr::from(&d).ceil_div(4),
        )]);
        let r = g
            .source(vec![crate::token::Token::Done], shape, ElemKind::Unit)
            .unwrap();
        let _ = g
            .linear_offchip_load(&r, LinearLoadCfg::new(0, (64, 256), (64, 64)))
            .unwrap();
        let graph = g.finish();
        let m = analyze(&graph);
        assert!(!m.offchip_traffic.is_concrete());
        let mut env = Env::new();
        env.bind(&d, 10); // ⌈10/4⌉ = 3 reads
        let (traffic, _) = m.eval(&env).unwrap();
        assert_eq!(traffic, 3 * 64 * 256 * 2);
    }
}
