//! STeP operator configurations (§3.2, Tables 3–7).
//!
//! Operators fall into five categories: off-chip memory operators, on-chip
//! memory operators, dynamic routing and merging operators, higher-order
//! operators, and shape operators. This module defines their configuration
//! types; shape inference lives in [`crate::graph`] and execution semantics
//! in the `step-sim` crate.

use crate::elem::Elem;
use crate::func::{AccumFn, FlatMapFn, MapFn};
use crate::token::Token;

/// Affine read configuration for `LinearOffChipLoad` (Fig 2).
///
/// The stored tensor of `mem_shape` elements is viewed as a row-major grid
/// of `tile_shape` tiles; each reference-stream element triggers an affine
/// read of `shape_tiled` tiles with `stride_tiled` steps (in tile units).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearLoadCfg {
    /// Base address of the stored tensor in off-chip memory (bytes).
    pub base_addr: u64,
    /// Stored tensor shape in elements: (rows, cols).
    pub mem_shape: (u64, u64),
    /// Tile shape in elements: (rows, cols).
    pub tile_shape: (u64, u64),
    /// Affine stride in tile units: (row step, col step).
    pub stride_tiled: (u64, u64),
    /// Affine extent in tiles: (rows of tiles, cols of tiles).
    pub shape_tiled: (u64, u64),
}

impl LinearLoadCfg {
    /// A full row-major read of the stored tensor: `shape_tiled` covers the
    /// whole tile grid with unit column stride.
    ///
    /// # Panics
    ///
    /// Panics if `tile_shape` does not evenly divide `mem_shape` or any
    /// extent is zero.
    pub fn new(base_addr: u64, mem_shape: (u64, u64), tile_shape: (u64, u64)) -> LinearLoadCfg {
        assert!(tile_shape.0 > 0 && tile_shape.1 > 0, "zero tile shape");
        assert!(
            mem_shape.0.is_multiple_of(tile_shape.0) && mem_shape.1.is_multiple_of(tile_shape.1),
            "tile shape must divide memory shape"
        );
        let grid = (mem_shape.0 / tile_shape.0, mem_shape.1 / tile_shape.1);
        LinearLoadCfg {
            base_addr,
            mem_shape,
            tile_shape,
            stride_tiled: (grid.1, 1),
            shape_tiled: grid,
        }
    }

    /// Overrides the affine stride/extent (both in tile units).
    pub fn with_view(mut self, stride_tiled: (u64, u64), shape_tiled: (u64, u64)) -> Self {
        self.stride_tiled = stride_tiled;
        self.shape_tiled = shape_tiled;
        self
    }

    /// The tile grid of the stored tensor: (rows of tiles, cols of tiles).
    pub fn grid(&self) -> (u64, u64) {
        (
            self.mem_shape.0 / self.tile_shape.0,
            self.mem_shape.1 / self.tile_shape.1,
        )
    }

    /// Bytes per tile.
    pub fn tile_bytes(&self) -> u64 {
        self.tile_shape.0 * self.tile_shape.1 * crate::DTYPE_BYTES
    }

    /// Tiles per triggered read.
    pub fn tiles_per_read(&self) -> u64 {
        self.shape_tiled.0 * self.shape_tiled.1
    }
}

/// Configuration for `RandomOffChipLoad`/`RandomOffChipStore`: random
/// access at tile granularity over a stored tensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomAccessCfg {
    /// Base address (bytes).
    pub base_addr: u64,
    /// Tile shape in elements: (rows, cols).
    pub tile_shape: (u64, u64),
}

impl RandomAccessCfg {
    /// Creates a random-access configuration.
    pub fn new(base_addr: u64, tile_shape: (u64, u64)) -> RandomAccessCfg {
        RandomAccessCfg {
            base_addr,
            tile_shape,
        }
    }

    /// Bytes per tile.
    pub fn tile_bytes(&self) -> u64 {
        self.tile_shape.0 * self.tile_shape.1 * crate::DTYPE_BYTES
    }
}

/// Affine-read configuration for `Streamify` over statically-shaped
/// buffers. Dynamically-shaped buffers always stream linearly (§3.2.2).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamifyCfg {
    /// Affine stride over the buffer in tile units, if affine.
    pub stride: Option<(u64, u64)>,
    /// Affine extent in tiles, if affine.
    pub shape: Option<(u64, u64)>,
}

/// A source node: plays a pre-materialized token stream at a configurable
/// rate. Models a graph input (e.g. activations arriving from a previous
/// fused region or a testbench).
#[derive(Debug, Clone, PartialEq)]
pub struct SourceCfg {
    /// The tokens to play, including the trailing `Done`.
    pub tokens: Vec<Token>,
    /// Tokens emitted per cycle (1 = one per cycle).
    pub tokens_per_cycle: u64,
}

/// A sink node: consumes a stream, recording it for inspection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkCfg {
    /// Whether to retain consumed tokens for test inspection.
    pub record: bool,
}

/// The operator of a graph node.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// Stream input (testbench or fused-region boundary).
    Source(SourceCfg),
    /// Off-chip → on-chip affine tiled load, triggered per reference
    /// element (Table 3).
    LinearLoad(LinearLoadCfg),
    /// On-chip → off-chip linear tiled store (Table 3).
    LinearStore {
        /// Destination base address.
        base_addr: u64,
    },
    /// Off-chip random load: one tile per address element (Table 3).
    RandomLoad(RandomAccessCfg),
    /// Off-chip random store: writes `wdata` tiles at `waddr` addresses,
    /// emitting an acknowledgement stream (Table 3).
    RandomStore(RandomAccessCfg),
    /// Stores the `rank` innermost dims of the stream into on-chip memory,
    /// emitting buffer references (Table 4, Fig 3).
    Bufferize {
        /// Number of innermost dims captured per buffer.
        rank: u8,
    },
    /// Reads buffers back into a stream, once per reference element
    /// (Table 4, Fig 3).
    Streamify(StreamifyCfg),
    /// Routes rank-`rank` chunks to selected consumers (Table 6).
    Partition {
        /// Chunk rank routed per selector element.
        rank: u8,
        /// Number of output streams.
        num_consumers: u32,
    },
    /// Merges rank-`rank` chunks from selected inputs per selector element,
    /// adding one dimension (Table 6, Fig 4).
    Reassemble {
        /// Chunk rank drained per selected input.
        rank: u8,
        /// Number of input streams.
        num_producers: u32,
    },
    /// Merges whole tensors from inputs in arrival order, emitting data
    /// plus a selector stream of provenance (Table 6).
    EagerMerge {
        /// Number of input streams.
        num_producers: u32,
    },
    /// Applies `func` elementwise (Table 5). Two-input maps consume a
    /// zipped tuple stream.
    Map {
        /// Hardware function.
        func: MapFn,
        /// Allocated compute bandwidth in FLOPs/cycle (§4.3).
        compute_bw: u64,
    },
    /// Reduces the `rank` innermost dims with `func` (Table 5).
    Accum {
        /// Reduction rank.
        rank: u8,
        /// Update function.
        func: AccumFn,
        /// Allocated compute bandwidth in FLOPs/cycle.
        compute_bw: u64,
    },
    /// Like `Accum` but emits the running accumulator per element
    /// (Table 5).
    Scan {
        /// Reduction rank (state resets at stops ≥ rank).
        rank: u8,
        /// Update function.
        func: AccumFn,
        /// Allocated compute bandwidth in FLOPs/cycle.
        compute_bw: u64,
    },
    /// Expands each element into a rank-`b` block; blocks concatenate
    /// (Table 5).
    FlatMap {
        /// Expansion function.
        func: FlatMapFn,
    },
    /// Generates, per input element carrying target index `i`, a rank-1
    /// block of `count` addresses `base + (i*count + j)*stride` — the
    /// address generator feeding `RandomOffChipLoad` under configuration
    /// time-multiplexing (Fig 11).
    AddrGen {
        /// Addresses per block.
        count: u64,
        /// Byte stride between consecutive addresses.
        stride: u64,
        /// Base address.
        base: u64,
    },
    /// Merges the dims between stop levels `min..=max` (Table 7).
    Flatten {
        /// Innermost flattened level.
        min: u8,
        /// Outermost flattened level.
        max: u8,
    },
    /// Splits the dim at stop level `level` into chunks of `chunk`
    /// elements, padding the tail with `pad` when `level == 0`; emits data
    /// and padding streams (Table 7).
    Reshape {
        /// Dim (stop level) to split. Only `0` may pad.
        level: u8,
        /// Chunk size.
        chunk: u64,
        /// Padding element for short tails (required at level 0 unless the
        /// dim is statically divisible).
        pad: Option<Elem>,
    },
    /// Adds a new outermost dimension of extent `1` (or `0` for an empty
    /// stream) (Table 7).
    Promote,
    /// Repeats elements of the input per the reference stream's structure
    /// below level `level` (Table 7, Fig 5).
    Expand {
        /// Smallest stop level of the input stream.
        level: u8,
    },
    /// Static variant of `Expand`: repeats each innermost element `factor`
    /// times, growing the innermost dim.
    ExpandStatic {
        /// Repeat count.
        factor: u64,
    },
    /// Groups two same-shaped streams into a tuple stream (Table 7).
    Zip,
    /// Replicates the input stream to `ways` outputs (hardware FIFO
    /// fan-out; infrastructure rather than a paper operator).
    Fork {
        /// Number of replicas.
        ways: u32,
    },
    /// Stream output.
    Sink(SinkCfg),
}

impl OpKind {
    /// A short operator name for diagnostics and trace output.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Source(_) => "Source",
            OpKind::LinearLoad(_) => "LinearOffChipLoad",
            OpKind::LinearStore { .. } => "LinearOffChipStore",
            OpKind::RandomLoad(_) => "RandomOffChipLoad",
            OpKind::RandomStore(_) => "RandomOffChipStore",
            OpKind::Bufferize { .. } => "Bufferize",
            OpKind::Streamify(_) => "Streamify",
            OpKind::Partition { .. } => "Partition",
            OpKind::Reassemble { .. } => "Reassemble",
            OpKind::EagerMerge { .. } => "EagerMerge",
            OpKind::Map { .. } => "Map",
            OpKind::Accum { .. } => "Accum",
            OpKind::Scan { .. } => "Scan",
            OpKind::FlatMap { .. } => "FlatMap",
            OpKind::AddrGen { .. } => "AddrGen",
            OpKind::Flatten { .. } => "Flatten",
            OpKind::Reshape { .. } => "Reshape",
            OpKind::Promote => "Promote",
            OpKind::Expand { .. } => "Expand",
            OpKind::ExpandStatic { .. } => "ExpandStatic",
            OpKind::Zip => "Zip",
            OpKind::Fork { .. } => "Fork",
            OpKind::Sink(_) => "Sink",
        }
    }

    /// Whether this operator touches off-chip memory (the only operators
    /// contributing off-chip traffic in §4.2).
    pub fn is_offchip(&self) -> bool {
        matches!(
            self,
            OpKind::LinearLoad(_)
                | OpKind::LinearStore { .. }
                | OpKind::RandomLoad(_)
                | OpKind::RandomStore(_)
        )
    }

    /// The compute bandwidth allocated to this node in FLOPs/cycle, if it
    /// is a compute operator.
    pub fn compute_bw(&self) -> Option<u64> {
        match self {
            OpKind::Map { compute_bw, .. }
            | OpKind::Accum { compute_bw, .. }
            | OpKind::Scan { compute_bw, .. } => Some(*compute_bw),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_load_defaults_cover_grid() {
        let cfg = LinearLoadCfg::new(0, (64, 256), (64, 64));
        assert_eq!(cfg.grid(), (1, 4));
        assert_eq!(cfg.shape_tiled, (1, 4));
        assert_eq!(cfg.stride_tiled, (4, 1));
        assert_eq!(cfg.tiles_per_read(), 4);
        assert_eq!(cfg.tile_bytes(), 64 * 64 * 2);
    }

    #[test]
    fn linear_load_with_view_overrides() {
        let cfg = LinearLoadCfg::new(0, (64, 256), (64, 64)).with_view((4, 1), (1, 2));
        assert_eq!(cfg.tiles_per_read(), 2);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn linear_load_rejects_nondividing_tiles() {
        let _ = LinearLoadCfg::new(0, (64, 250), (64, 64));
    }

    #[test]
    fn op_kind_queries() {
        let load = OpKind::LinearLoad(LinearLoadCfg::new(0, (64, 64), (64, 64)));
        assert!(load.is_offchip());
        assert_eq!(load.name(), "LinearOffChipLoad");
        let map = OpKind::Map {
            func: MapFn::Matmul,
            compute_bw: 1024,
        };
        assert!(!map.is_offchip());
        assert_eq!(map.compute_bw(), Some(1024));
        assert_eq!(OpKind::Promote.compute_bw(), None);
    }
}
