//! Stream data types (§3.1).
//!
//! The data type of a STeP stream is a tile, a selector (multi-hot vector
//! driving routing/merging operators), a read-only reference to on-chip
//! memory, a scalar address, a boolean (padding flags), or a tuple of
//! these. [`Elem`] is the runtime value; [`ElemKind`] is the static
//! descriptor used by the graph builder for type checking and by the
//! symbolic metric equations for byte sizes.

use crate::DTYPE_BYTES;
use crate::error::{Result, StepError};
use crate::shape::{Dim, StreamShape};
use crate::tile::Tile;
use std::fmt;
use step_symbolic::Expr;

/// A multi-hot selector choosing one or more targets (§3.2.3).
///
/// # Examples
///
/// ```
/// use step_core::elem::Selector;
/// let s = Selector::multi(&[0, 7]);
/// assert!(s.contains(7));
/// assert_eq!(s.targets(), &[0, 7]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Selector {
    targets: Vec<u32>,
}

impl Selector {
    /// A one-hot selector.
    pub fn one(target: u32) -> Selector {
        Selector {
            targets: vec![target],
        }
    }

    /// A multi-hot selector; duplicate targets are collapsed and order is
    /// normalized ascending.
    pub fn multi(targets: &[u32]) -> Selector {
        let mut t = targets.to_vec();
        t.sort_unstable();
        t.dedup();
        Selector { targets: t }
    }

    /// Selected target indices, ascending.
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// Whether `target` is selected.
    pub fn contains(&self, target: u32) -> bool {
        self.targets.binary_search(&target).is_ok()
    }

    /// Number of selected targets.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether no target is selected.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }
}

impl fmt::Display for Selector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sel{:?}", self.targets)
    }
}

/// A read-only reference to an on-chip buffer produced by `Bufferize`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BufRef {
    /// Identifier into the simulator's on-chip buffer arena.
    pub id: u64,
    /// Number of tiles stored, per buffered dimension (innermost last).
    pub dims: Vec<u64>,
}

impl fmt::Display for BufRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "buf#{}{:?}", self.id, self.dims)
    }
}

/// A runtime stream element.
#[derive(Debug, Clone, PartialEq)]
pub enum Elem {
    /// A two-dimensional tile.
    Tile(Tile),
    /// A multi-hot routing selector.
    Sel(Selector),
    /// A reference to on-chip memory.
    Buf(BufRef),
    /// A scalar address (for random off-chip access).
    Addr(u64),
    /// A boolean (padding streams).
    Bool(bool),
    /// A unit/trigger value whose contents do not matter (reference
    /// streams of load operators).
    Unit,
    /// A tuple of elements (from `Zip`).
    Tuple(Vec<Elem>),
}

impl Elem {
    /// The element's size in bytes under the modeled datatype widths.
    pub fn bytes(&self) -> u64 {
        match self {
            Elem::Tile(t) => t.bytes(),
            Elem::Sel(_) => 8,
            Elem::Buf(_) => 8,
            Elem::Addr(_) => 8,
            Elem::Bool(_) => 1,
            Elem::Unit => 0,
            Elem::Tuple(v) => v.iter().map(Elem::bytes).sum(),
        }
    }

    /// Unwraps a tile.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::ElemType`] if the element is not a tile.
    pub fn as_tile(&self) -> Result<&Tile> {
        match self {
            Elem::Tile(t) => Ok(t),
            other => Err(StepError::ElemType(format!("expected tile, got {other}"))),
        }
    }

    /// Unwraps a selector.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::ElemType`] if the element is not a selector.
    pub fn as_sel(&self) -> Result<&Selector> {
        match self {
            Elem::Sel(s) => Ok(s),
            other => Err(StepError::ElemType(format!(
                "expected selector, got {other}"
            ))),
        }
    }

    /// Unwraps a buffer reference.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::ElemType`] if the element is not a buffer ref.
    pub fn as_buf(&self) -> Result<&BufRef> {
        match self {
            Elem::Buf(b) => Ok(b),
            other => Err(StepError::ElemType(format!(
                "expected buffer ref, got {other}"
            ))),
        }
    }

    /// Unwraps an address.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::ElemType`] if the element is not an address.
    pub fn as_addr(&self) -> Result<u64> {
        match self {
            Elem::Addr(a) => Ok(*a),
            other => Err(StepError::ElemType(format!(
                "expected address, got {other}"
            ))),
        }
    }

    /// O(1)-per-level conservative equality for run coalescing: `true`
    /// only when the two elements are provably interchangeable (tiles
    /// defer to [`Tile::coalesces_with`] — same shape and phantom or
    /// payload-aliased; everything else compares by value, which is
    /// cheap for the scalar variants). False negatives are allowed and
    /// merely prevent coalescing; false positives would corrupt streams
    /// and are never produced.
    pub fn coalesces_with(&self, other: &Elem) -> bool {
        match (self, other) {
            (Elem::Tile(a), Elem::Tile(b)) => a.coalesces_with(b),
            (Elem::Sel(a), Elem::Sel(b)) => a == b,
            (Elem::Buf(a), Elem::Buf(b)) => a == b,
            (Elem::Addr(a), Elem::Addr(b)) => a == b,
            (Elem::Bool(a), Elem::Bool(b)) => a == b,
            (Elem::Unit, Elem::Unit) => true,
            (Elem::Tuple(a), Elem::Tuple(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.coalesces_with(y))
            }
            _ => false,
        }
    }

    /// Unwraps a tuple.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::ElemType`] if the element is not a tuple.
    pub fn as_tuple(&self) -> Result<&[Elem]> {
        match self {
            Elem::Tuple(v) => Ok(v),
            other => Err(StepError::ElemType(format!("expected tuple, got {other}"))),
        }
    }
}

impl fmt::Display for Elem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Elem::Tile(t) => write!(f, "{t}"),
            Elem::Sel(s) => write!(f, "{s}"),
            Elem::Buf(b) => write!(f, "{b}"),
            Elem::Addr(a) => write!(f, "addr:{a:#x}"),
            Elem::Bool(b) => write!(f, "{b}"),
            Elem::Unit => write!(f, "unit"),
            Elem::Tuple(v) => {
                f.write_str("(")?;
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// Static descriptor of a stream's element type, with (possibly symbolic)
/// tile shapes. Used for build-time type checking and metric equations.
#[derive(Debug, Clone, PartialEq)]
pub enum ElemKind {
    /// Tiles of `rows x cols` elements; dims may be dynamic (dynamic
    /// tiling).
    Tile {
        /// Tile row count.
        rows: Dim,
        /// Tile column count.
        cols: Dim,
    },
    /// Multi-hot selectors over `num_targets` targets.
    Selector {
        /// Number of selectable targets.
        num_targets: u32,
    },
    /// References to on-chip buffers holding tiles of the `inner` kind
    /// arranged per `shape` (innermost dims of the bufferized stream).
    Buffer {
        /// Element kind stored in the buffer.
        inner: Box<ElemKind>,
        /// Buffered dimensions (outermost first).
        shape: Vec<Dim>,
    },
    /// Scalar addresses.
    Addr,
    /// Booleans.
    Bool,
    /// Trigger/reference values with no content.
    Unit,
    /// Tuples.
    Tuple(Vec<ElemKind>),
}

impl ElemKind {
    /// Tile kind with static shape.
    pub fn tile(rows: u64, cols: u64) -> ElemKind {
        ElemKind::Tile {
            rows: Dim::fixed(rows),
            cols: Dim::fixed(cols),
        }
    }

    /// Symbolic size in bytes of one element of this kind (`|dtype|` in the
    /// metric equations of §4.2).
    pub fn bytes(&self) -> Expr {
        match self {
            ElemKind::Tile { rows, cols } => rows.expr() * cols.expr() * Expr::from(DTYPE_BYTES),
            ElemKind::Selector { .. } => Expr::from(8u64),
            ElemKind::Buffer { .. } => Expr::from(8u64),
            ElemKind::Addr => Expr::from(8u64),
            ElemKind::Bool => Expr::from(1u64),
            ElemKind::Unit => Expr::from(0u64),
            ElemKind::Tuple(v) => Expr::sum_of(v.iter().map(ElemKind::bytes)),
        }
    }

    /// For buffer kinds: total bytes held by one buffer
    /// (`||buffer|| * |input dtype|`).
    pub fn buffer_bytes(&self) -> Expr {
        match self {
            ElemKind::Buffer { inner, shape } => {
                let card = Expr::product_of(shape.iter().map(Dim::expr));
                card * inner.bytes()
            }
            _ => Expr::from(0u64),
        }
    }

    /// Unwraps tile dims.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::ElemType`] if not a tile kind.
    pub fn as_tile_dims(&self) -> Result<(&Dim, &Dim)> {
        match self {
            ElemKind::Tile { rows, cols } => Ok((rows, cols)),
            other => Err(StepError::ElemType(format!(
                "expected tile kind, got {other:?}"
            ))),
        }
    }

    /// Checks that a runtime element is admissible for this kind (static
    /// dims must match exactly; dynamic dims admit any size).
    pub fn admits(&self, elem: &Elem) -> bool {
        match (self, elem) {
            (ElemKind::Tile { rows, cols }, Elem::Tile(t)) => {
                let row_ok = rows.as_static().is_none_or(|r| r == t.rows() as u64);
                let col_ok = cols.as_static().is_none_or(|c| c == t.cols() as u64);
                row_ok && col_ok
            }
            (ElemKind::Selector { num_targets }, Elem::Sel(s)) => {
                s.targets().iter().all(|t| t < num_targets)
            }
            (ElemKind::Buffer { .. }, Elem::Buf(_)) => true,
            (ElemKind::Addr, Elem::Addr(_)) => true,
            (ElemKind::Bool, Elem::Bool(_)) => true,
            (ElemKind::Unit, _) => true,
            (ElemKind::Tuple(ks), Elem::Tuple(es)) => {
                ks.len() == es.len() && ks.iter().zip(es).all(|(k, e)| k.admits(e))
            }
            _ => false,
        }
    }
}

/// Helper building the buffer kind produced by `Bufferize` over the `b`
/// innermost dims of a stream with `shape` and element kind `inner`.
pub fn buffer_kind(inner: &ElemKind, shape: &StreamShape, b: u8) -> ElemKind {
    ElemKind::Buffer {
        inner: Box::new(inner.clone()),
        shape: shape.inner(b as usize).to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use step_symbolic::SymbolTable;

    #[test]
    fn selector_normalizes() {
        let s = Selector::multi(&[7, 0, 7]);
        assert_eq!(s.targets(), &[0, 7]);
        assert_eq!(s.len(), 2);
        assert!(s.contains(0));
        assert!(!s.contains(3));
    }

    #[test]
    fn elem_bytes() {
        assert_eq!(Elem::Tile(Tile::zeros(4, 64)).bytes(), 512);
        assert_eq!(Elem::Bool(true).bytes(), 1);
        assert_eq!(Elem::Unit.bytes(), 0);
        let t = Elem::Tuple(vec![Elem::Addr(0), Elem::Bool(false)]);
        assert_eq!(t.bytes(), 9);
    }

    #[test]
    fn elem_kind_bytes_symbolic() {
        let mut syms = SymbolTable::new();
        let d = syms.fresh("D");
        let k = ElemKind::Tile {
            rows: Dim::dyn_regular(d.clone()),
            cols: Dim::fixed(64),
        };
        let mut env = step_symbolic::Env::new();
        env.bind(&d, 4);
        assert_eq!(k.bytes().eval(&env).unwrap(), 4 * 64 * 2);
    }

    #[test]
    fn buffer_kind_bytes() {
        let inner = ElemKind::tile(16, 16);
        let shape = StreamShape::fixed(&[2, 3, 4]);
        let k = buffer_kind(&inner, &shape, 2);
        // buffer shape [3,4], 12 tiles of 512 bytes
        assert_eq!(k.buffer_bytes().as_const(), Some(12 * 512));
        assert_eq!(k.bytes().as_const(), Some(8));
    }

    #[test]
    fn admits_checks_static_dims() {
        let k = ElemKind::tile(4, 64);
        assert!(k.admits(&Elem::Tile(Tile::zeros(4, 64))));
        assert!(!k.admits(&Elem::Tile(Tile::zeros(3, 64))));
        let mut syms = SymbolTable::new();
        let dk = ElemKind::Tile {
            rows: Dim::ragged(syms.fresh("R")),
            cols: Dim::fixed(64),
        };
        assert!(dk.admits(&Elem::Tile(Tile::zeros(3, 64))));
        assert!(!dk.admits(&Elem::Tile(Tile::zeros(3, 65))));
    }

    #[test]
    fn admits_selector_range() {
        let k = ElemKind::Selector { num_targets: 8 };
        assert!(k.admits(&Elem::Sel(Selector::multi(&[0, 7]))));
        assert!(!k.admits(&Elem::Sel(Selector::one(8))));
    }

    #[test]
    fn unwrap_helpers_error_on_wrong_variant() {
        assert!(Elem::Bool(true).as_tile().is_err());
        assert!(Elem::Unit.as_sel().is_err());
        assert!(Elem::Addr(4).as_addr().unwrap() == 4);
        assert!(Elem::Tuple(vec![]).as_tuple().unwrap().is_empty());
    }
}
