//! The STeP program graph and its shape-verifying builder (§3, §4.1).
//!
//! A STeP program is a dataflow graph of asynchronously executing operator
//! nodes connected by streams. [`GraphBuilder`] mirrors the paper's
//! symbolic Python frontend: each operator method infers the output stream
//! shape per the shape semantics of Tables 3–7 and *verifies* that
//! producer and consumer shapes align, so malformed programs are rejected
//! at build time rather than at simulation time. Every stream handle
//! ([`StreamRef`]) exposes its symbolic shape for inspection, like
//! `print(output.stream.shape)` in Listing 1.

use crate::elem::{Elem, ElemKind, buffer_kind};
use crate::error::{Result, StepError};
use crate::func::{AccumFn, FlatMapFn, MapFn};
use crate::ops::{LinearLoadCfg, OpKind, RandomAccessCfg, SinkCfg, SourceCfg, StreamifyCfg};
use crate::shape::{Dim, StreamShape};
use crate::token::{self, Token};
use step_symbolic::SymbolTable;

/// Identifier of a node within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifier of an edge (stream) within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

/// Key identifying an unfulfilled feedback stream opened with
/// [`GraphBuilder::feedback`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedbackKey(NodeId);

/// A handle to a not-yet-consumed output stream of a node under
/// construction. Carries the inferred symbolic shape and element kind.
#[derive(Debug, Clone)]
pub struct StreamRef {
    edge: EdgeId,
    shape: StreamShape,
    kind: ElemKind,
}

impl StreamRef {
    /// The symbolic stream shape (outermost dim first).
    pub fn shape(&self) -> &StreamShape {
        &self.shape
    }

    /// The stream's element kind.
    pub fn kind(&self) -> &ElemKind {
        &self.kind
    }

    /// The underlying edge id.
    pub fn edge(&self) -> EdgeId {
        self.edge
    }
}

/// A node of the program graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// The operator.
    pub op: OpKind,
    /// Input edges, in port order.
    pub inputs: Vec<EdgeId>,
    /// Output edges, in port order.
    pub outputs: Vec<EdgeId>,
    /// Optional human-readable label for diagnostics.
    pub label: String,
}

/// An edge (stream) of the program graph.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Producing node and output port.
    pub src: (NodeId, u16),
    /// Consuming node and input port (`None` until connected; `finish`
    /// auto-sinks dangling edges).
    pub dst: Option<(NodeId, u16)>,
    /// Symbolic stream shape.
    pub shape: StreamShape,
    /// Element kind.
    pub kind: ElemKind,
    /// FIFO capacity in tokens (hardware queue depth).
    pub capacity: usize,
}

/// A finished STeP program graph.
#[derive(Debug, Clone)]
pub struct Graph {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl Graph {
    /// The nodes, indexed by [`NodeId`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The edges, indexed by [`EdgeId`].
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0 as usize]
    }

    /// Total compute bandwidth allocated across all compute nodes, in
    /// FLOPs/cycle (the "allocated compute" resource metric of §5.3).
    pub fn allocated_compute(&self) -> u64 {
        self.nodes.iter().filter_map(|n| n.op.compute_bw()).sum()
    }
}

/// Builds a [`Graph`] operator by operator, verifying shapes.
///
/// See the crate-level example. Unconnected output streams are
/// automatically terminated with non-recording sinks by
/// [`GraphBuilder::finish`].
#[derive(Debug)]
pub struct GraphBuilder {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    syms: SymbolTable,
    default_capacity: usize,
    pending_feedback: Vec<NodeId>,
}

impl Default for GraphBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Checks one dimension for producer/consumer compatibility: static dims
/// must match exactly; dynamic dims are compatible with anything (their
/// concrete sizes are checked by the simulator).
fn dims_compatible(a: &Dim, b: &Dim) -> bool {
    match (a.as_static(), b.as_static()) {
        (Some(x), Some(y)) => x == y,
        _ => true,
    }
}

fn shapes_compatible(a: &StreamShape, b: &StreamShape) -> bool {
    a.dims().len() == b.dims().len()
        && a.dims()
            .iter()
            .zip(b.dims())
            .all(|(x, y)| dims_compatible(x, y))
}

fn kinds_compatible(a: &ElemKind, b: &ElemKind) -> bool {
    match (a, b) {
        (ElemKind::Tile { rows: r1, cols: c1 }, ElemKind::Tile { rows: r2, cols: c2 }) => {
            dims_compatible(r1, r2) && dims_compatible(c1, c2)
        }
        (ElemKind::Tuple(x), ElemKind::Tuple(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(a, b)| kinds_compatible(a, b))
        }
        (x, y) => std::mem::discriminant(x) == std::mem::discriminant(y),
    }
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> GraphBuilder {
        GraphBuilder {
            nodes: Vec::new(),
            edges: Vec::new(),
            syms: SymbolTable::new(),
            default_capacity: 16,
            pending_feedback: Vec::new(),
        }
    }

    /// Sets the default FIFO capacity for subsequently created streams.
    pub fn set_default_capacity(&mut self, cap: usize) -> &mut Self {
        assert!(cap > 0, "capacity must be positive");
        self.default_capacity = cap;
        self
    }

    /// Access to the symbol table (for minting dims in sources).
    pub fn symbols(&mut self) -> &mut SymbolTable {
        &mut self.syms
    }

    /// Overrides the FIFO capacity of a stream.
    pub fn set_capacity(&mut self, s: &StreamRef, cap: usize) {
        assert!(cap > 0, "capacity must be positive");
        self.edges[s.edge.0 as usize].capacity = cap;
    }

    /// The node producing stream `s` — stable across `finish`, so model
    /// builders can hand out the ids of rebindable `Source` nodes.
    pub fn node_of(&self, s: &StreamRef) -> NodeId {
        self.edges[s.edge.0 as usize].src.0
    }

    /// Attaches a diagnostic label to the most recently added node.
    pub fn label_last(&mut self, label: &str) -> &mut Self {
        if let Some(n) = self.nodes.last_mut() {
            n.label = label.to_string();
        }
        self
    }

    fn add_node(&mut self, op: OpKind, inputs: &[&StreamRef]) -> Result<NodeId> {
        let id = NodeId(self.nodes.len() as u32);
        let mut in_edges = Vec::with_capacity(inputs.len());
        for (port, s) in inputs.iter().enumerate() {
            let e = &mut self.edges[s.edge.0 as usize];
            if e.dst.is_some() {
                return Err(StepError::Config(format!(
                    "stream {:?} already consumed; use fork() for fan-out",
                    s.edge
                )));
            }
            e.dst = Some((id, port as u16));
            in_edges.push(s.edge);
        }
        self.nodes.push(Node {
            op,
            inputs: in_edges,
            outputs: Vec::new(),
            label: String::new(),
        });
        Ok(id)
    }

    fn add_output(&mut self, node: NodeId, shape: StreamShape, kind: ElemKind) -> StreamRef {
        let edge = EdgeId(self.edges.len() as u32);
        let port = self.nodes[node.0 as usize].outputs.len() as u16;
        self.edges.push(Edge {
            src: (node, port),
            dst: None,
            shape: shape.clone(),
            kind: kind.clone(),
            capacity: self.default_capacity,
        });
        self.nodes[node.0 as usize].outputs.push(edge);
        StreamRef { edge, shape, kind }
    }

    // ------------------------------------------------------------------
    // Sources and sinks
    // ------------------------------------------------------------------

    /// A source playing `tokens` (validated against `rank` of `shape`).
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Malformed`] if the tokens violate stop-token
    /// discipline for the shape's rank.
    pub fn source(
        &mut self,
        tokens: Vec<Token>,
        shape: StreamShape,
        kind: ElemKind,
    ) -> Result<StreamRef> {
        token::validate(&tokens, shape.rank())?;
        let node = self.add_node(
            OpKind::Source(SourceCfg {
                tokens,
                tokens_per_cycle: 1,
            }),
            &[],
        )?;
        Ok(self.add_output(node, shape, kind))
    }

    /// A rank-0 source of `n` unit (trigger) tokens.
    pub fn unit_source(&mut self, n: u64) -> StreamRef {
        let tokens = token::rank0_from_values((0..n).map(|_| Elem::Unit));
        self.source(tokens, StreamShape::fixed(&[n]), ElemKind::Unit)
            .expect("unit source tokens are well-formed")
    }

    /// A rank-0 source of selector values over `num_targets` targets.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Config`] if a selector exceeds `num_targets`.
    pub fn selector_source(
        &mut self,
        selectors: Vec<crate::elem::Selector>,
        num_targets: u32,
    ) -> Result<StreamRef> {
        let kind = ElemKind::Selector { num_targets };
        for s in &selectors {
            if !kind.admits(&Elem::Sel(s.clone())) {
                return Err(StepError::Config(format!(
                    "selector {s} out of range for {num_targets} targets"
                )));
            }
        }
        let n = selectors.len() as u64;
        let tokens = token::rank0_from_values(selectors.into_iter().map(Elem::Sel));
        self.source(tokens, StreamShape::fixed(&[n]), kind)
    }

    /// A recording sink; consumed tokens are retrievable from the
    /// simulator by the returned node id.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Config`] if the stream was already consumed.
    pub fn sink(&mut self, s: &StreamRef) -> Result<NodeId> {
        self.add_node(OpKind::Sink(SinkCfg { record: true }), &[s])
    }

    // ------------------------------------------------------------------
    // Off-chip memory operators (Table 3)
    // ------------------------------------------------------------------

    /// `LinearOffChipLoad`: one affine tiled read per reference element.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Config`] on invalid configuration or a
    /// consumed reference stream.
    pub fn linear_offchip_load(
        &mut self,
        reference: &StreamRef,
        cfg: LinearLoadCfg,
    ) -> Result<StreamRef> {
        if cfg.shape_tiled.0 == 0 || cfg.shape_tiled.1 == 0 {
            return Err(StepError::Config("empty affine extent".into()));
        }
        let (tr, tc) = cfg.tile_shape;
        let extra = [Dim::fixed(cfg.shape_tiled.0), Dim::fixed(cfg.shape_tiled.1)];
        let shape = reference.shape.append_inner(&extra);
        let kind = ElemKind::tile(tr, tc);
        let node = self.add_node(OpKind::LinearLoad(cfg), &[reference])?;
        Ok(self.add_output(node, shape, kind))
    }

    /// `LinearOffChipStore`: writes the stream's tiles linearly at
    /// `base_addr`.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::ElemType`] if the stream does not carry tiles.
    pub fn linear_offchip_store(&mut self, s: &StreamRef, base_addr: u64) -> Result<NodeId> {
        s.kind.as_tile_dims()?;
        self.add_node(OpKind::LinearStore { base_addr }, &[s])
    }

    /// `RandomOffChipLoad`: one tile per address element.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::ElemType`] if the address stream does not
    /// carry addresses.
    pub fn random_offchip_load(
        &mut self,
        raddr: &StreamRef,
        cfg: RandomAccessCfg,
    ) -> Result<StreamRef> {
        if !matches!(raddr.kind, ElemKind::Addr) {
            return Err(StepError::ElemType(
                "RandomOffChipLoad needs an address stream".into(),
            ));
        }
        let kind = ElemKind::tile(cfg.tile_shape.0, cfg.tile_shape.1);
        let shape = raddr.shape.clone();
        let node = self.add_node(OpKind::RandomLoad(cfg), &[raddr])?;
        Ok(self.add_output(node, shape, kind))
    }

    /// `RandomOffChipStore`: writes `wdata` tiles at `waddr` addresses and
    /// emits an acknowledgement stream.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Shape`] if the address and data shapes differ.
    pub fn random_offchip_store(
        &mut self,
        waddr: &StreamRef,
        wdata: &StreamRef,
        cfg: RandomAccessCfg,
    ) -> Result<StreamRef> {
        if !matches!(waddr.kind, ElemKind::Addr) {
            return Err(StepError::ElemType(
                "RandomOffChipStore needs an address stream".into(),
            ));
        }
        wdata.kind.as_tile_dims()?;
        if !shapes_compatible(&waddr.shape, &wdata.shape) {
            return Err(StepError::Shape(format!(
                "waddr {} vs wdata {}",
                waddr.shape, wdata.shape
            )));
        }
        let shape = waddr.shape.clone();
        let node = self.add_node(OpKind::RandomStore(cfg), &[waddr, wdata])?;
        Ok(self.add_output(node, shape, ElemKind::Bool))
    }

    // ------------------------------------------------------------------
    // On-chip memory operators (Table 4)
    // ------------------------------------------------------------------

    /// `Bufferize`: captures the `rank` innermost dims into on-chip
    /// buffers (Fig 3). Inner buffered dims may be dynamic-regular; only
    /// the outermost buffered dim may be ragged.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Shape`] on rank violations.
    pub fn bufferize(&mut self, s: &StreamRef, rank: u8) -> Result<StreamRef> {
        if rank == 0 || rank > s.shape.rank() {
            return Err(StepError::Shape(format!(
                "bufferize rank {rank} invalid for stream of rank {}",
                s.shape.rank()
            )));
        }
        let inner = s.shape.inner(rank as usize);
        if inner[1..].iter().any(Dim::is_ragged) {
            return Err(StepError::Shape(
                "only the outermost bufferized dim may be ragged".into(),
            ));
        }
        let kind = buffer_kind(&s.kind, &s.shape, rank);
        let shape = s.shape.drop_inner(rank as usize);
        let node = self.add_node(OpKind::Bufferize { rank }, &[s])?;
        Ok(self.add_output(node, shape, kind))
    }

    /// `Streamify`: reads each buffer per the reference stream (Fig 3).
    /// Static buffers support affine reads via `cfg`; dynamic buffers
    /// stream linearly.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::ElemType`] if `bufs` is not a buffer stream or
    /// [`StepError::Shape`] if the reference rank is too small.
    pub fn streamify(
        &mut self,
        bufs: &StreamRef,
        reference: &StreamRef,
        cfg: StreamifyCfg,
    ) -> Result<StreamRef> {
        let (inner, buf_shape) = match &bufs.kind {
            ElemKind::Buffer { inner, shape } => ((**inner).clone(), shape.clone()),
            _ => {
                return Err(StepError::ElemType(
                    "Streamify needs a buffer stream".into(),
                ));
            }
        };
        if reference.shape.rank() < bufs.shape.rank() {
            return Err(StepError::Shape(format!(
                "reference rank {} below buffer stream rank {}",
                reference.shape.rank(),
                bufs.shape.rank()
            )));
        }
        let static_buf = buf_shape.iter().all(|d| !d.is_dynamic());
        let extra: Vec<Dim> = match (&cfg.shape, static_buf) {
            (Some((r, c)), true) => vec![Dim::fixed(*r), Dim::fixed(*c)],
            _ => buf_shape.clone(),
        };
        let shape = reference.shape.append_inner(&extra);
        let node = self.add_node(OpKind::Streamify(cfg), &[bufs, reference])?;
        Ok(self.add_output(node, shape, inner))
    }

    // ------------------------------------------------------------------
    // Dynamic routing and merging operators (Table 6)
    // ------------------------------------------------------------------

    /// `Partition`: routes rank-`rank` chunks of `s` to the outputs
    /// selected by each (multi-hot) selector element.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Shape`] on rank mismatches or
    /// [`StepError::ElemType`] if `sel` is not a selector stream.
    pub fn partition(
        &mut self,
        s: &StreamRef,
        sel: &StreamRef,
        rank: u8,
        num_consumers: u32,
    ) -> Result<Vec<StreamRef>> {
        match &sel.kind {
            ElemKind::Selector { num_targets } if *num_targets == num_consumers => {}
            ElemKind::Selector { num_targets } => {
                return Err(StepError::Config(format!(
                    "selector targets {num_targets} != consumers {num_consumers}"
                )));
            }
            _ => {
                return Err(StepError::ElemType(
                    "Partition needs a selector stream".into(),
                ));
            }
        }
        if rank == 0 || rank > s.shape.rank() {
            return Err(StepError::Shape(format!(
                "partition rank {rank} invalid for stream of rank {}",
                s.shape.rank()
            )));
        }
        let expected_sel_rank = s.shape.rank() - rank;
        if sel.shape.rank() != expected_sel_rank {
            return Err(StepError::Shape(format!(
                "selector rank {} != input rank {} - partition rank {rank}",
                sel.shape.rank(),
                s.shape.rank()
            )));
        }
        let node = self.add_node(
            OpKind::Partition {
                rank,
                num_consumers,
            },
            &[s, sel],
        )?;
        let has_outer = s.shape.rank() > rank;
        let mut outs = Vec::with_capacity(num_consumers as usize);
        for _ in 0..num_consumers {
            let fresh = self.syms.fresh("Dpart");
            let dim = if has_outer {
                Dim::Ragged(step_symbolic::Expr::Sym(fresh))
            } else {
                Dim::DynRegular(step_symbolic::Expr::Sym(fresh))
            };
            let shape = s.shape.with_dim_at_level(rank, dim);
            outs.push(self.add_output(node, shape, s.kind.clone()));
        }
        Ok(outs)
    }

    /// `Reassemble`: per selector element, drains one rank-`rank` tensor
    /// from each selected input (in arrival order, non-interleaved) and
    /// adds a new dimension (Fig 4).
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Shape`]/[`StepError::ElemType`] on
    /// incompatible inputs.
    pub fn reassemble(
        &mut self,
        inputs: &[&StreamRef],
        sel: &StreamRef,
        rank: u8,
    ) -> Result<StreamRef> {
        if inputs.is_empty() {
            return Err(StepError::Config("Reassemble needs inputs".into()));
        }
        match &sel.kind {
            ElemKind::Selector { num_targets } if *num_targets as usize == inputs.len() => {}
            ElemKind::Selector { num_targets } => {
                return Err(StepError::Config(format!(
                    "selector targets {num_targets} != inputs {}",
                    inputs.len()
                )));
            }
            _ => {
                return Err(StepError::ElemType(
                    "Reassemble needs a selector stream".into(),
                ));
            }
        }
        let first = inputs[0];
        for s in inputs {
            if s.shape.rank() != rank {
                return Err(StepError::Shape(format!(
                    "reassemble input rank {} != reassemble rank {rank}",
                    s.shape.rank()
                )));
            }
            if !kinds_compatible(&s.kind, &first.kind) {
                return Err(StepError::ElemType(
                    "reassemble inputs must share an element kind".into(),
                ));
            }
        }
        let mut all: Vec<&StreamRef> = inputs.to_vec();
        all.push(sel);
        let node = self.add_node(
            OpKind::Reassemble {
                rank,
                num_producers: inputs.len() as u32,
            },
            &all,
        )?;
        // Output shape: sel dims ++ [fresh chunk-count dim] ++ input inner
        // dims (Table 6).
        let fresh = Dim::DynRegular(step_symbolic::Expr::Sym(self.syms.fresh("Dsel")));
        let mut dims = sel.shape.dims().to_vec();
        dims.push(fresh);
        dims.extend_from_slice(first.shape.inner(rank as usize));
        Ok(self.add_output(node, StreamShape::new(dims), first.kind.clone()))
    }

    /// `EagerMerge`: merges whole tensors from `inputs` in arrival order;
    /// returns `(data, selector)` where the selector stream records each
    /// chunk's source index.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Shape`] if inputs disagree on rank.
    pub fn eager_merge(&mut self, inputs: &[&StreamRef]) -> Result<(StreamRef, StreamRef)> {
        if inputs.is_empty() {
            return Err(StepError::Config("EagerMerge needs inputs".into()));
        }
        let first = inputs[0];
        for s in inputs {
            if s.shape.rank() != first.shape.rank() {
                return Err(StepError::Shape(format!(
                    "eager-merge input ranks differ: {} vs {}",
                    s.shape.rank(),
                    first.shape.rank()
                )));
            }
            if !kinds_compatible(&s.kind, &first.kind) {
                return Err(StepError::ElemType(
                    "eager-merge inputs must share an element kind".into(),
                ));
            }
        }
        let node = self.add_node(
            OpKind::EagerMerge {
                num_producers: inputs.len() as u32,
            },
            inputs,
        )?;
        let total = Dim::DynRegular(step_symbolic::Expr::Sym(self.syms.fresh("Dsum")));
        let mut dims = first.shape.dims().to_vec();
        dims[0] = total.clone();
        let data = self.add_output(node, StreamShape::new(dims), first.kind.clone());
        let sel = self.add_output(
            node,
            StreamShape::new(vec![total]),
            ElemKind::Selector {
                num_targets: inputs.len() as u32,
            },
        );
        Ok((data, sel))
    }

    // ------------------------------------------------------------------
    // Higher-order operators (Table 5)
    // ------------------------------------------------------------------

    /// `Map`: applies `func` to every element; the stream shape is
    /// unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::ElemType`] if `func` cannot accept the
    /// stream's element kind.
    pub fn map(&mut self, s: &StreamRef, func: MapFn, compute_bw: u64) -> Result<StreamRef> {
        let kind = infer_map_kind(&func, &s.kind)?;
        let shape = s.shape.clone();
        let node = self.add_node(OpKind::Map { func, compute_bw }, &[s])?;
        Ok(self.add_output(node, shape, kind))
    }

    /// Convenience: zips `a` and `b` and maps a binary `func` over the
    /// pairs (the two-input `Map` of Listing 1).
    ///
    /// # Errors
    ///
    /// Propagates [`GraphBuilder::zip`] and [`GraphBuilder::map`] errors.
    pub fn map2(
        &mut self,
        a: &StreamRef,
        b: &StreamRef,
        func: MapFn,
        compute_bw: u64,
    ) -> Result<StreamRef> {
        let z = self.zip(a, b)?;
        self.map(&z, func, compute_bw)
    }

    /// `Accum`: folds the `rank` innermost dims with `func`. The
    /// accumulator may be dynamically sized (e.g. `RetileRow` over a
    /// dynamic dim — the mechanism behind dynamic tiling, §5.2).
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Shape`] on rank violations.
    pub fn accum(
        &mut self,
        s: &StreamRef,
        rank: u8,
        func: AccumFn,
        compute_bw: u64,
    ) -> Result<StreamRef> {
        if rank == 0 || rank > s.shape.rank() {
            return Err(StepError::Shape(format!(
                "accum rank {rank} invalid for stream of rank {}",
                s.shape.rank()
            )));
        }
        let kind = infer_accum_kind(&func, &s.kind, &s.shape, rank, &mut self.syms)?;
        let shape = s.shape.drop_inner(rank as usize);
        let node = self.add_node(
            OpKind::Accum {
                rank,
                func,
                compute_bw,
            },
            &[s],
        )?;
        Ok(self.add_output(node, shape, kind))
    }

    /// `Scan`: like `Accum` but emits the running state per element; the
    /// stream shape is unchanged. Only elementwise accumulation
    /// ([`AccumFn::AddTiles`]) keeps the element kind stable and is
    /// accepted.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Config`] for non-elementwise functions.
    pub fn scan(
        &mut self,
        s: &StreamRef,
        rank: u8,
        func: AccumFn,
        compute_bw: u64,
    ) -> Result<StreamRef> {
        if func != AccumFn::AddTiles {
            return Err(StepError::Config(
                "Scan requires an elementwise update (AddTiles)".into(),
            ));
        }
        if rank == 0 || rank > s.shape.rank() {
            return Err(StepError::Shape(format!(
                "scan rank {rank} invalid for stream of rank {}",
                s.shape.rank()
            )));
        }
        let shape = s.shape.clone();
        let kind = s.kind.clone();
        let node = self.add_node(
            OpKind::Scan {
                rank,
                func,
                compute_bw,
            },
            &[s],
        )?;
        Ok(self.add_output(node, shape, kind))
    }

    /// `FlatMap`: expands each element into a rank-`b` block; consecutive
    /// blocks concatenate along the new level-`b` dim (Table 5).
    ///
    /// # Errors
    ///
    /// Returns [`StepError::ElemType`] for non-tile streams.
    pub fn flat_map(&mut self, s: &StreamRef, func: FlatMapFn) -> Result<StreamRef> {
        let (rows, cols) = s.kind.as_tile_dims()?;
        let (rows, cols) = (rows.clone(), cols.clone());
        let b = func.block_rank();
        debug_assert_eq!(b, 1, "only rank-1 flat-map blocks are modeled");
        // Out element: `chunk`-sized slices (tail chunks may be short,
        // making the split dim ragged unless it divides evenly).
        let (split, keep, split_rows) = match func {
            FlatMapFn::SplitRows { chunk } => (rows.clone(), cols, (true, chunk)),
            FlatMapFn::SplitCols { chunk } => (cols.clone(), rows, (false, chunk)),
        };
        let chunk = split_rows.1;
        let out_split = match split.as_static() {
            Some(r) if r % chunk as u64 == 0 => Dim::fixed(chunk as u64),
            _ => Dim::Ragged(step_symbolic::Expr::Sym(self.syms.fresh("Tsplit"))),
        };
        let chunks_per_tile = split.ceil_div(chunk as u64, &mut self.syms);
        // Innermost dim D_0 becomes the block-count dim at level 1 with a
        // new innermost dim of chunks (Table 5's D'_b..D'_0).
        let mut dims = s.shape.dims().to_vec();
        dims.push(chunks_per_tile);
        let kind = if split_rows.0 {
            ElemKind::Tile {
                rows: out_split,
                cols: keep,
            }
        } else {
            ElemKind::Tile {
                rows: keep,
                cols: out_split,
            }
        };
        let node = self.add_node(OpKind::FlatMap { func }, &[s])?;
        Ok(self.add_output(node, StreamShape::new(dims), kind))
    }

    /// Address generator: per element carrying a target index `i`
    /// (selector or address), emits a rank-1 block of `count` addresses
    /// `base + (i*count + j)*stride` (weight fetch under configuration
    /// time-multiplexing, Fig 11).
    ///
    /// # Errors
    ///
    /// Returns [`StepError::ElemType`] for inadmissible input kinds.
    pub fn addr_gen(
        &mut self,
        s: &StreamRef,
        base: u64,
        count: u64,
        stride: u64,
    ) -> Result<StreamRef> {
        if !matches!(s.kind, ElemKind::Selector { .. } | ElemKind::Addr) {
            return Err(StepError::ElemType(
                "AddrGen needs a selector or address stream".into(),
            ));
        }
        if count == 0 {
            return Err(StepError::Config("AddrGen count must be > 0".into()));
        }
        let mut dims = s.shape.dims().to_vec();
        dims.push(Dim::fixed(count));
        let node = self.add_node(
            OpKind::AddrGen {
                count,
                stride,
                base,
            },
            &[s],
        )?;
        Ok(self.add_output(node, StreamShape::new(dims), ElemKind::Addr))
    }

    // ------------------------------------------------------------------
    // Shape operators (Table 7)
    // ------------------------------------------------------------------

    /// `Flatten`: merges the dims between stop levels `min..=max`.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Shape`] for invalid ranges.
    pub fn flatten(&mut self, s: &StreamRef, min: u8, max: u8) -> Result<StreamRef> {
        let shape = s.shape.flatten(min, max, &mut self.syms)?;
        let kind = s.kind.clone();
        let node = self.add_node(OpKind::Flatten { min, max }, &[s])?;
        Ok(self.add_output(node, shape, kind))
    }

    /// `Reshape`: splits the innermost dim into chunks of `chunk`
    /// elements, padding short tails with `pad`; returns `(data, padding)`
    /// streams (Table 7).
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Config`] if padding is required but absent,
    /// or if `pad` is not admissible for the stream's element kind.
    pub fn reshape(
        &mut self,
        s: &StreamRef,
        chunk: u64,
        pad: Option<Elem>,
    ) -> Result<(StreamRef, StreamRef)> {
        if chunk == 0 {
            return Err(StepError::Config("reshape chunk must be > 0".into()));
        }
        let innermost = s.shape.dim_at_level(0);
        let statically_divisible =
            chunk == 1 || matches!(innermost.as_static(), Some(n) if n % chunk == 0);
        if !statically_divisible && pad.is_none() {
            return Err(StepError::Config(format!(
                "reshape of dim {innermost} by {chunk} requires a pad value"
            )));
        }
        if let Some(p) = &pad
            && !s.kind.admits(p)
        {
            return Err(StepError::Config(
                "pad value not admissible for stream element kind".into(),
            ));
        }
        let new_outer = s.shape.dim_at_level(0).ceil_div(chunk, &mut self.syms);
        let mut dims = s.shape.dims().to_vec();
        let last = dims.len() - 1;
        dims[last] = new_outer;
        dims.push(Dim::fixed(chunk));
        let shape = StreamShape::new(dims);
        let kind = s.kind.clone();
        let node = self.add_node(
            OpKind::Reshape {
                level: 0,
                chunk,
                pad,
            },
            &[s],
        )?;
        let data = self.add_output(node, shape.clone(), kind);
        let padding = self.add_output(node, shape, ElemKind::Bool);
        Ok((data, padding))
    }

    /// `Promote`: adds a new outermost dimension of extent 1 (0 for empty
    /// streams).
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Config`] if the stream was already consumed.
    pub fn promote(&mut self, s: &StreamRef) -> Result<StreamRef> {
        let mut dims = vec![Dim::fixed(1)];
        dims.extend_from_slice(s.shape.dims());
        let kind = s.kind.clone();
        let node = self.add_node(OpKind::Promote, &[s])?;
        Ok(self.add_output(node, StreamShape::new(dims), kind))
    }

    /// `Expand`: repeats input elements per the reference stream's
    /// structure below `level` (Fig 5). The input dims below `level` must
    /// be 1.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Shape`] on rank mismatch or non-unit inner
    /// dims.
    pub fn expand(&mut self, s: &StreamRef, reference: &StreamRef, level: u8) -> Result<StreamRef> {
        if s.shape.rank() != reference.shape.rank() {
            return Err(StepError::Shape(format!(
                "expand: input rank {} != reference rank {}",
                s.shape.rank(),
                reference.shape.rank()
            )));
        }
        for l in 0..level {
            if let Some(n) = s.shape.dim_at_level(l).as_static()
                && n != 1
            {
                return Err(StepError::Shape(format!(
                    "expand: input dim at level {l} must be 1, got {n}"
                )));
            }
        }
        let shape = reference.shape.clone();
        let kind = s.kind.clone();
        let node = self.add_node(OpKind::Expand { level }, &[s, reference])?;
        Ok(self.add_output(node, shape, kind))
    }

    /// Static `Expand`: repeats each element `factor` times, growing the
    /// innermost dim (footnote 6: every reference-driven operator has a
    /// static variant).
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Config`] for a zero factor.
    pub fn expand_static(&mut self, s: &StreamRef, factor: u64) -> Result<StreamRef> {
        if factor == 0 {
            return Err(StepError::Config("expand factor must be > 0".into()));
        }
        let inner = s.shape.dim_at_level(0);
        let new_inner = inner.multiply(&Dim::fixed(factor), &mut self.syms);
        let shape = s.shape.with_dim_at_level(0, new_inner);
        let kind = s.kind.clone();
        let node = self.add_node(OpKind::ExpandStatic { factor }, &[s])?;
        Ok(self.add_output(node, shape, kind))
    }

    /// `Zip`: groups two same-shaped streams into a tuple stream.
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Shape`] if the shapes are incompatible.
    pub fn zip(&mut self, a: &StreamRef, b: &StreamRef) -> Result<StreamRef> {
        if !shapes_compatible(&a.shape, &b.shape) {
            return Err(StepError::Shape(format!("zip: {} vs {}", a.shape, b.shape)));
        }
        let kind = ElemKind::Tuple(vec![a.kind.clone(), b.kind.clone()]);
        let shape = a.shape.clone();
        let node = self.add_node(OpKind::Zip, &[a, b])?;
        Ok(self.add_output(node, shape, kind))
    }

    /// Replicates a stream to `ways` consumers (hardware FIFO fan-out).
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Config`] for zero ways or a consumed stream.
    pub fn fork(&mut self, s: &StreamRef, ways: u32) -> Result<Vec<StreamRef>> {
        if ways == 0 {
            return Err(StepError::Config("fork needs at least one way".into()));
        }
        let node = self.add_node(OpKind::Fork { ways }, &[s])?;
        let mut outs = Vec::with_capacity(ways as usize);
        for _ in 0..ways {
            outs.push(self.add_output(node, s.shape.clone(), s.kind.clone()));
        }
        Ok(outs)
    }

    /// Opens a feedback stream: a handle usable as an operator input
    /// *now*, whose producer is supplied later with
    /// [`GraphBuilder::fulfill_feedback`]. This is how cyclic dataflow —
    /// e.g. the availability signals of dynamic parallelization (Fig 16)
    /// — is expressed: downstream completion tokens feed back into an
    /// upstream selector merge.
    pub fn feedback(&mut self, shape: StreamShape, kind: ElemKind) -> (StreamRef, FeedbackKey) {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            op: OpKind::Fork { ways: 1 },
            inputs: Vec::new(),
            outputs: Vec::new(),
            label: "feedback".to_string(),
        });
        self.pending_feedback.push(id);
        let s = self.add_output(id, shape, kind);
        (s, FeedbackKey(id))
    }

    /// Connects the producer of a feedback stream opened with
    /// [`GraphBuilder::feedback`].
    ///
    /// # Errors
    ///
    /// Returns [`StepError::Config`] if the key was already fulfilled or
    /// the stream is consumed, and [`StepError::Shape`] on shape mismatch.
    pub fn fulfill_feedback(&mut self, key: FeedbackKey, s: &StreamRef) -> Result<()> {
        let pos = self
            .pending_feedback
            .iter()
            .position(|&n| n == key.0)
            .ok_or_else(|| StepError::Config("feedback already fulfilled".into()))?;
        let node = key.0;
        let out_edge = self.nodes[node.0 as usize].outputs[0];
        let expected = self.edges[out_edge.0 as usize].shape.clone();
        if !shapes_compatible(&expected, &s.shape) {
            return Err(StepError::Shape(format!(
                "feedback shape {} vs {}",
                expected, s.shape
            )));
        }
        let e = &mut self.edges[s.edge.0 as usize];
        if e.dst.is_some() {
            return Err(StepError::Config(
                "feedback producer stream already consumed".into(),
            ));
        }
        e.dst = Some((node, 0));
        self.nodes[node.0 as usize].inputs.push(s.edge);
        self.pending_feedback.swap_remove(pos);
        Ok(())
    }

    /// Finalizes the graph, auto-terminating any unconnected streams with
    /// non-recording sinks.
    ///
    /// # Panics
    ///
    /// Panics if a feedback stream was opened but never fulfilled.
    pub fn finish(mut self) -> Graph {
        assert!(
            self.pending_feedback.is_empty(),
            "unfulfilled feedback streams: {:?}",
            self.pending_feedback
        );
        let dangling: Vec<EdgeId> = self
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.dst.is_none())
            .map(|(i, _)| EdgeId(i as u32))
            .collect();
        for edge in dangling {
            let id = NodeId(self.nodes.len() as u32);
            self.edges[edge.0 as usize].dst = Some((id, 0));
            self.nodes.push(Node {
                op: OpKind::Sink(SinkCfg { record: false }),
                inputs: vec![edge],
                outputs: Vec::new(),
                label: "auto-sink".to_string(),
            });
        }
        Graph {
            nodes: self.nodes,
            edges: self.edges,
        }
    }
}

/// Infers the output element kind of a `Map` function.
fn infer_map_kind(func: &MapFn, input: &ElemKind) -> Result<ElemKind> {
    let tuple2 = |input: &ElemKind| -> Result<(ElemKind, ElemKind)> {
        match input {
            ElemKind::Tuple(v) if v.len() == 2 => Ok((v[0].clone(), v[1].clone())),
            other => Err(StepError::ElemType(format!(
                "map function needs a 2-tuple stream, got {other:?}"
            ))),
        }
    };
    match func {
        MapFn::Matmul => {
            let (a, b) = tuple2(input)?;
            let (ar, ac) = a.as_tile_dims()?;
            let (br, bc) = b.as_tile_dims()?;
            if !dims_compatible(ac, br) {
                return Err(StepError::Shape(format!("matmul inner dims {ac} vs {br}")));
            }
            Ok(ElemKind::Tile {
                rows: ar.clone(),
                cols: bc.clone(),
            })
        }
        MapFn::MatmulBt => {
            let (a, b) = tuple2(input)?;
            let (ar, ac) = a.as_tile_dims()?;
            let (br, bc) = b.as_tile_dims()?;
            if !dims_compatible(ac, bc) {
                return Err(StepError::Shape(format!(
                    "matmul_bt inner dims {ac} vs {bc}"
                )));
            }
            Ok(ElemKind::Tile {
                rows: ar.clone(),
                cols: br.clone(),
            })
        }
        MapFn::Elementwise(_) => {
            input.as_tile_dims()?;
            Ok(input.clone())
        }
        MapFn::Binary(_) => {
            let (a, b) = tuple2(input)?;
            let (ar, ac) = a.as_tile_dims()?;
            let (br, bc) = b.as_tile_dims()?;
            if !dims_compatible(ar, br) || !dims_compatible(ac, bc) {
                return Err(StepError::Shape(
                    "binary map needs equal tile shapes".into(),
                ));
            }
            Ok(a.clone())
        }
        MapFn::RowReduce(_) => {
            let (rows, _) = input.as_tile_dims()?;
            Ok(ElemKind::Tile {
                rows: rows.clone(),
                cols: Dim::fixed(1),
            })
        }
    }
}

/// Infers the output element kind of an `Accum`.
fn infer_accum_kind(
    func: &AccumFn,
    input: &ElemKind,
    shape: &StreamShape,
    rank: u8,
    syms: &mut SymbolTable,
) -> Result<ElemKind> {
    let (rows, cols) = input.as_tile_dims()?;
    let (rows, cols) = (rows.clone(), cols.clone());
    let folded = shape.inner(rank as usize);
    let mut count = folded[0].clone();
    for d in &folded[1..] {
        count = count.multiply(d, syms);
    }
    match func {
        AccumFn::RetileRow => Ok(ElemKind::Tile {
            rows: rows.multiply(&count, syms),
            cols,
        }),
        AccumFn::RetileCol => Ok(ElemKind::Tile {
            rows,
            cols: cols.multiply(&count, syms),
        }),
        AccumFn::AddTiles => Ok(ElemKind::Tile { rows, cols }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elem::Selector;
    use crate::func::{BinOp, EwOp};

    fn tile_source(g: &mut GraphBuilder, n: u64, rows: u64, cols: u64) -> StreamRef {
        let tokens = token::rank0_from_values(
            (0..n).map(|_| Elem::Tile(crate::tile::Tile::phantom(rows as usize, cols as usize))),
        );
        g.source(tokens, StreamShape::fixed(&[n]), ElemKind::tile(rows, cols))
            .unwrap()
    }

    #[test]
    fn linear_load_shape_follows_fig2() {
        // Fig 2: 64x256 tensor, 64x64 tiles, ref shape [D1] -> out
        // [D1, 1, 4] of [64,64] tiles.
        let mut g = GraphBuilder::new();
        let d1 = g.symbols().fresh("D1");
        let r = g
            .source(
                token::rank0_from_values([Elem::Unit]),
                StreamShape::new(vec![Dim::dyn_regular(d1)]),
                ElemKind::Unit,
            )
            .unwrap();
        let out = g
            .linear_offchip_load(&r, LinearLoadCfg::new(0, (64, 256), (64, 64)))
            .unwrap();
        assert_eq!(out.shape().rank(), 2);
        assert_eq!(out.shape().dim_at_level(1), &Dim::fixed(1));
        assert_eq!(out.shape().dim_at_level(0), &Dim::fixed(4));
        assert_eq!(out.kind(), &ElemKind::tile(64, 64));
    }

    #[test]
    fn stream_cannot_be_consumed_twice() {
        let mut g = GraphBuilder::new();
        let s = tile_source(&mut g, 4, 16, 16);
        g.map(&s, MapFn::Elementwise(EwOp::Relu), 64).unwrap();
        let err = g.map(&s, MapFn::Elementwise(EwOp::Relu), 64);
        assert!(matches!(err, Err(StepError::Config(_))));
    }

    #[test]
    fn fork_enables_fanout() {
        let mut g = GraphBuilder::new();
        let s = tile_source(&mut g, 4, 16, 16);
        let outs = g.fork(&s, 2).unwrap();
        g.map(&outs[0], MapFn::Elementwise(EwOp::Relu), 64).unwrap();
        g.map(&outs[1], MapFn::Elementwise(EwOp::Silu), 64).unwrap();
        let graph = g.finish();
        // source + fork + 2 maps + 2 auto-sinks
        assert_eq!(graph.nodes().len(), 6);
    }

    #[test]
    fn bufferize_streamify_shapes_follow_fig3() {
        let mut g = GraphBuilder::new();
        let drag = g.symbols().fresh("Drag");
        let dreg = g.symbols().fresh("Dreg");
        // Input [2, Drag~, 2] of 16x16 tiles.
        let tokens = token::rank2_from_tensors(&[
            vec![vec![Elem::Tile(crate::tile::Tile::phantom(16, 16)); 2]; 1],
            vec![vec![Elem::Tile(crate::tile::Tile::phantom(16, 16)); 2]; 2],
        ]);
        let s = g
            .source(
                tokens,
                StreamShape::new(vec![Dim::fixed(2), Dim::ragged(drag), Dim::fixed(2)]),
                ElemKind::tile(16, 16),
            )
            .unwrap();
        let bufs = g.bufferize(&s, 2).unwrap();
        assert_eq!(bufs.shape(), &StreamShape::fixed(&[2]));
        assert!(matches!(bufs.kind(), ElemKind::Buffer { .. }));
        // Reference [2, Dreg] triggers Dreg reads per buffer.
        let r = g
            .source(
                token::rank1_from_groups(&[vec![Elem::Unit], vec![Elem::Unit]]),
                StreamShape::new(vec![Dim::fixed(2), Dim::dyn_regular(dreg)]),
                ElemKind::Unit,
            )
            .unwrap();
        let out = g.streamify(&bufs, &r, StreamifyCfg::default()).unwrap();
        // Out: [2, Dreg, Drag~, 2], rank 3.
        assert_eq!(out.shape().rank(), 3);
        assert!(out.shape().dim_at_level(1).is_ragged());
        assert_eq!(out.shape().dim_at_level(0), &Dim::fixed(2));
    }

    #[test]
    fn bufferize_rejects_inner_ragged() {
        let mut g = GraphBuilder::new();
        let drag = g.symbols().fresh("Drag");
        let s = g
            .source(
                vec![Token::Done],
                StreamShape::new(vec![Dim::fixed(2), Dim::fixed(2), Dim::ragged(drag)]),
                ElemKind::tile(16, 16),
            )
            .unwrap();
        assert!(matches!(g.bufferize(&s, 2), Err(StepError::Shape(_))));
    }

    #[test]
    fn partition_mints_dynamic_dims() {
        let mut g = GraphBuilder::new();
        let s = {
            // Rank-1: 10 rows of one [1,64] tile each.
            let groups: Vec<Vec<Elem>> = (0..10)
                .map(|_| vec![Elem::Tile(crate::tile::Tile::phantom(1, 64))])
                .collect();
            g.source(
                token::rank1_from_groups(&groups),
                StreamShape::fixed(&[10, 1]),
                ElemKind::tile(1, 64),
            )
            .unwrap()
        };
        let sel = g
            .selector_source((0..10).map(|i| Selector::one(i % 2)).collect(), 2)
            .unwrap();
        let outs = g.partition(&s, &sel, 1, 2).unwrap();
        assert_eq!(outs.len(), 2);
        for o in &outs {
            assert_eq!(o.shape().rank(), 1);
            assert!(o.shape().dim_at_level(1).is_dynamic());
            assert!(!o.shape().dim_at_level(1).is_ragged());
            assert_eq!(o.shape().dim_at_level(0), &Dim::fixed(1));
        }
    }

    #[test]
    fn partition_rank_and_selector_checks() {
        let mut g = GraphBuilder::new();
        let s = tile_source(&mut g, 4, 1, 64);
        let sel = g.selector_source(vec![Selector::one(0); 4], 2).unwrap();
        // rank 1 on a rank-0 stream is invalid
        assert!(g.partition(&s, &sel, 1, 2).is_err());
        // selector target count mismatch
        let s2 = tile_source(&mut g, 4, 1, 64);
        let sel3 = g.selector_source(vec![Selector::one(0); 4], 3).unwrap();
        assert!(g.partition(&s2, &sel3, 1, 2).is_err());
    }

    #[test]
    fn reassemble_shape_adds_dim() {
        let mut g = GraphBuilder::new();
        let groups: Vec<Vec<Elem>> = vec![vec![Elem::Tile(crate::tile::Tile::phantom(1, 64))]; 2];
        let a = g
            .source(
                token::rank1_from_groups(&groups),
                StreamShape::fixed(&[2, 1]),
                ElemKind::tile(1, 64),
            )
            .unwrap();
        let b = g
            .source(
                token::rank1_from_groups(&groups),
                StreamShape::fixed(&[2, 1]),
                ElemKind::tile(1, 64),
            )
            .unwrap();
        let sel = g
            .selector_source(vec![Selector::one(0), Selector::one(1)], 2)
            .unwrap();
        let out = g.reassemble(&[&a, &b], &sel, 1).unwrap();
        assert_eq!(out.shape().rank(), 2);
        assert_eq!(out.shape().dim_at_level(0), &Dim::fixed(1));
    }

    #[test]
    fn eager_merge_outputs_data_and_selector() {
        let mut g = GraphBuilder::new();
        let groups: Vec<Vec<Elem>> = vec![vec![Elem::Tile(crate::tile::Tile::phantom(1, 64))]; 2];
        let a = g
            .source(
                token::rank1_from_groups(&groups),
                StreamShape::fixed(&[2, 1]),
                ElemKind::tile(1, 64),
            )
            .unwrap();
        let b = g
            .source(
                token::rank1_from_groups(&groups),
                StreamShape::fixed(&[2, 1]),
                ElemKind::tile(1, 64),
            )
            .unwrap();
        let (data, sel) = g.eager_merge(&[&a, &b]).unwrap();
        assert_eq!(data.shape().rank(), 1);
        assert!(data.shape().dim_at_level(1).is_dynamic());
        assert_eq!(sel.shape().rank(), 0);
        assert!(matches!(sel.kind(), ElemKind::Selector { num_targets: 2 }));
    }

    #[test]
    fn map_matmul_kind_inference() {
        let mut g = GraphBuilder::new();
        let a = tile_source(&mut g, 2, 4, 64);
        let b = tile_source(&mut g, 2, 64, 256);
        let out = g.map2(&a, &b, MapFn::Matmul, 1024).unwrap();
        assert_eq!(out.kind(), &ElemKind::tile(4, 256));
    }

    #[test]
    fn map_matmul_rejects_bad_inner_dims() {
        let mut g = GraphBuilder::new();
        let a = tile_source(&mut g, 2, 4, 32);
        let b = tile_source(&mut g, 2, 64, 256);
        assert!(matches!(
            g.map2(&a, &b, MapFn::Matmul, 1024),
            Err(StepError::Shape(_))
        ));
    }

    #[test]
    fn map_binary_requires_equal_shapes() {
        let mut g = GraphBuilder::new();
        let a = tile_source(&mut g, 2, 4, 64);
        let b = tile_source(&mut g, 2, 4, 32);
        assert!(g.map2(&a, &b, MapFn::Binary(BinOp::Mul), 64).is_err());
    }

    #[test]
    fn accum_retile_row_grows_tile() {
        let mut g = GraphBuilder::new();
        let groups: Vec<Vec<Elem>> =
            vec![vec![Elem::Tile(crate::tile::Tile::phantom(1, 64)); 4]; 3];
        let s = g
            .source(
                token::rank1_from_groups(&groups),
                StreamShape::fixed(&[3, 4]),
                ElemKind::tile(1, 64),
            )
            .unwrap();
        let out = g.accum(&s, 1, AccumFn::RetileRow, 0).unwrap();
        assert_eq!(out.shape(), &StreamShape::fixed(&[3]));
        assert_eq!(out.kind(), &ElemKind::tile(4, 64));
    }

    #[test]
    fn flatten_reshape_pipeline_matches_moe_walkthrough() {
        // §3.3: [D_i, 1] --Flatten(0,1)--> [D_i'] --Reshape(4, pad)-->
        // [⌈D_i/4⌉, 4].
        let mut g = GraphBuilder::new();
        let di = g.symbols().fresh("Di");
        let s = g
            .source(
                vec![Token::Done],
                StreamShape::new(vec![Dim::dyn_regular(di), Dim::fixed(1)]),
                ElemKind::tile(1, 64),
            )
            .unwrap();
        let flat = g.flatten(&s, 0, 1).unwrap();
        assert_eq!(flat.shape().rank(), 0);
        let (data, padding) = g
            .reshape(&flat, 4, Some(Elem::Tile(crate::tile::Tile::zeros(1, 64))))
            .unwrap();
        assert_eq!(data.shape().rank(), 1);
        assert_eq!(data.shape().dim_at_level(0), &Dim::fixed(4));
        assert!(data.shape().dim_at_level(1).is_dynamic());
        assert!(matches!(padding.kind(), ElemKind::Bool));
    }

    #[test]
    fn reshape_requires_pad_for_indivisible() {
        let mut g = GraphBuilder::new();
        let s = tile_source(&mut g, 10, 1, 64);
        assert!(g.reshape(&s, 4, None).is_err());
        let s2 = tile_source(&mut g, 8, 1, 64);
        assert!(g.reshape(&s2, 4, None).is_ok());
    }

    #[test]
    fn reshape_rejects_inadmissible_pad() {
        let mut g = GraphBuilder::new();
        let s = tile_source(&mut g, 10, 1, 64);
        assert!(
            g.reshape(&s, 4, Some(Elem::Tile(crate::tile::Tile::zeros(2, 2))))
                .is_err()
        );
    }

    #[test]
    fn promote_prepends_unit_dim() {
        let mut g = GraphBuilder::new();
        let s = tile_source(&mut g, 4, 1, 64);
        let p = g.promote(&s).unwrap();
        assert_eq!(p.shape().dims()[0], Dim::fixed(1));
        assert_eq!(p.shape().rank(), 1);
    }

    #[test]
    fn expand_static_grows_innermost() {
        let mut g = GraphBuilder::new();
        let s = tile_source(&mut g, 4, 1, 64);
        let (data, _) = g.reshape(&s, 1, None).unwrap();
        let e = g.expand_static(&data, 4).unwrap();
        assert_eq!(e.shape().dim_at_level(0), &Dim::fixed(4));
    }

    #[test]
    fn zip_checks_shapes() {
        let mut g = GraphBuilder::new();
        let a = tile_source(&mut g, 4, 1, 64);
        let b = tile_source(&mut g, 5, 1, 64);
        assert!(matches!(g.zip(&a, &b), Err(StepError::Shape(_))));
    }

    #[test]
    fn finish_auto_sinks_dangling_streams() {
        let mut g = GraphBuilder::new();
        let _ = tile_source(&mut g, 4, 1, 64);
        let graph = g.finish();
        assert_eq!(graph.nodes().len(), 2);
        assert!(graph.edges().iter().all(|e| e.dst.is_some()));
    }

    #[test]
    fn allocated_compute_sums_bandwidth() {
        let mut g = GraphBuilder::new();
        let a = tile_source(&mut g, 2, 4, 64);
        let m = g.map(&a, MapFn::Elementwise(EwOp::Relu), 512).unwrap();
        let _ = g.accum(&m, 0, AccumFn::AddTiles, 256);
        let a2 = {
            let groups: Vec<Vec<Elem>> =
                vec![vec![Elem::Tile(crate::tile::Tile::phantom(4, 64))]; 2];
            g.source(
                token::rank1_from_groups(&groups),
                StreamShape::fixed(&[2, 1]),
                ElemKind::tile(4, 64),
            )
            .unwrap()
        };
        let _ = g.accum(&a2, 1, AccumFn::AddTiles, 256).unwrap();
        let graph = g.finish();
        assert_eq!(graph.allocated_compute(), 512 + 256);
    }
}
