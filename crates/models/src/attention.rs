//! Decode attention with the three parallelization strategies of §5.4.
//!
//! During decoding, each request attends over its own KV cache; per-request
//! work is proportional to KV length and the phase is memory-bound.
//! Requests are routed to `regions` parallel attention pipelines:
//!
//! - **Static coarse**: a fixed quota of requests per region (16 in the
//!   paper) — idle regions at small batches, imbalance at large ones.
//! - **Static interleaved**: round-robin — a long request blocks the
//!   dispatch of later requests behind its region's queue.
//! - **Dynamic** (Fig 16): a feedback loop merges per-region completion
//!   signals (`EagerMerge` provenance) with an initial round-robin
//!   assignment, dispatching each request to the first region that frees
//!   up.

use crate::config::ModelConfig;
use step_core::elem::{Elem, ElemKind, Selector};
use step_core::func::{AccumFn, EwOp, MapFn};
use step_core::graph::{GraphBuilder, StreamRef};
use step_core::ops::RandomAccessCfg;
use step_core::shape::{Dim, StreamShape};
use step_core::token;
use step_core::{Result, StepError};
use step_traces::KvTrace;

/// Request-dispatch strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelStrategy {
    /// Fixed quota of `quota` requests per region, in order.
    StaticCoarse {
        /// Requests per region (16 in §5.4).
        quota: u32,
    },
    /// Round-robin.
    StaticInterleaved,
    /// Dispatch on availability via the Fig 16 feedback graph.
    Dynamic,
}

impl std::fmt::Display for ParallelStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParallelStrategy::StaticCoarse { .. } => write!(f, "static-coarse"),
            ParallelStrategy::StaticInterleaved => write!(f, "static-interleave"),
            ParallelStrategy::Dynamic => write!(f, "dynamic"),
        }
    }
}

/// Attention layer schedule.
#[derive(Debug, Clone)]
pub struct AttentionCfg {
    /// Model dimensions (KV bytes per token).
    pub model: ModelConfig,
    /// Parallel attention regions (4 in §5.4).
    pub regions: u32,
    /// KV tokens grouped per loaded tile.
    pub tokens_per_kv_tile: u64,
    /// Compute bandwidth per score map, FLOPs/cycle.
    pub compute_bw: u64,
    /// Dispatch strategy.
    pub strategy: ParallelStrategy,
    /// Extra KV tokens per request the dispatch queues are provisioned
    /// for beyond the build-time trace. A decode loop grows every
    /// request by one token per iteration; provisioning the region
    /// queues for the final lengths lets one `SimPlan` serve every
    /// iteration through source rebinding instead of rebuilding the
    /// graph. Zero (the default) sizes queues exactly for the
    /// build-time trace.
    pub kv_headroom: u32,
}

impl AttentionCfg {
    /// The §5.4 setup: 4 regions, paper's coarse quota of 16.
    pub fn new(model: ModelConfig, strategy: ParallelStrategy) -> AttentionCfg {
        AttentionCfg {
            model,
            regions: 4,
            tokens_per_kv_tile: 16,
            // The score unit scans the region's KV buffer through one
            // on-chip memory unit (64 B/cycle, §5.1): at 4 modeled
            // FLOPs/element (2 bytes each) that is 128 FLOPs/cycle, which
            // the roofline turns into bytes/64 cycles per tile.
            compute_bw: 128,
            strategy,
            kv_headroom: 0,
        }
    }

    /// Provisions the dispatch queues for requests up to `extra` KV
    /// tokens longer than the build-time trace (decode-loop reuse).
    pub fn with_kv_headroom(mut self, extra: u32) -> AttentionCfg {
        self.kv_headroom = extra;
        self
    }

    /// Bytes per loaded KV tile.
    pub fn kv_tile_bytes(&self) -> u64 {
        self.tokens_per_kv_tile * self.model.kv_bytes_per_token()
    }

    /// KV tiles needed by a request of `len` tokens.
    pub fn tiles_for(&self, len: u32) -> u64 {
        (len as u64).div_ceil(self.tokens_per_kv_tile)
    }
}

mod layout {
    /// KV cache base; each request's cache lives at a fixed stride.
    pub const KV: u64 = 0x10_0000_0000;
    /// Per-request KV stride (supports up to the clamp maximum).
    pub const KV_STRIDE: u64 = 0x1000_0000;
    /// Attention outputs (per region).
    pub const OUT: u64 = 0x30_0000_0000;
    /// Output stride.
    pub const OUT_STRIDE: u64 = 0x100_0000;
}

/// The rebindable `Source` nodes of an attention graph, for driving one
/// [`step_sim::SimPlan`] across decode iterations.
#[derive(Debug, Clone, Copy)]
pub struct AttentionPorts {
    /// The per-request KV-tile-address stream (`attn.requests`): bind
    /// [`attention_request_tokens`] of the iteration's KV trace.
    pub requests: step_core::graph::NodeId,
}

/// The token stream played by the `attn.requests` source for `kv`:
/// request `i` is a rank-1 group of its KV tile addresses. Build the
/// graph once (with enough [`AttentionCfg::kv_headroom`]), then bind
/// this stream per decode iteration as the caches grow.
pub fn attention_request_tokens(cfg: &AttentionCfg, kv: &KvTrace) -> Vec<token::Token> {
    let tile_bytes = cfg.kv_tile_bytes();
    let groups: Vec<Vec<Elem>> = kv
        .lengths
        .iter()
        .enumerate()
        .map(|(i, &len)| {
            let base = layout::KV + (i as u64) * layout::KV_STRIDE;
            (0..cfg.tiles_for(len))
                .map(|j| Elem::Addr(base + j * tile_bytes))
                .collect()
        })
        .collect();
    token::rank1_from_groups(&groups)
}

/// Builds the attention graph for a batch with the given KV lengths.
///
/// # Errors
///
/// Returns [`StepError::Config`] for a zero region count.
pub fn attention_graph(cfg: &AttentionCfg, kv: &KvTrace) -> Result<step_core::Graph> {
    Ok(attention_graph_with_ports(cfg, kv)?.0)
}

/// Builds the attention graph and returns the rebindable source ports
/// alongside it.
///
/// # Errors
///
/// Returns [`StepError::Config`] for a zero region count.
pub fn attention_graph_with_ports(
    cfg: &AttentionCfg,
    kv: &KvTrace,
) -> Result<(step_core::Graph, AttentionPorts)> {
    let mut g = GraphBuilder::new();
    let ports = build_attention(&mut g, cfg, kv)?;
    Ok((g.finish(), ports))
}

/// Appends the attention layer to an existing builder, returning the
/// rebindable source ports.
///
/// # Errors
///
/// Returns [`StepError::Config`] for invalid configurations.
pub fn build_attention(
    g: &mut GraphBuilder,
    cfg: &AttentionCfg,
    kv: &KvTrace,
) -> Result<AttentionPorts> {
    if cfg.regions == 0 {
        return Err(StepError::Config("need at least one region".into()));
    }
    let batch = kv.lengths.len() as u64;
    let r = cfg.regions;
    let tile_bytes = cfg.kv_tile_bytes();
    let tile_cols = (tile_bytes / step_core::DTYPE_BYTES) as usize;

    // Request stream: request i is a rank-1 tensor of its KV tile
    // addresses.
    let ragged = g.symbols().fresh("Lkv");
    let requests = g.source(
        attention_request_tokens(cfg, kv),
        StreamShape::new(vec![Dim::fixed(batch), Dim::ragged(ragged)]),
        ElemKind::Addr,
    )?;
    g.label_last("attn.requests");
    let ports = AttentionPorts {
        requests: g.node_of(&requests),
    };

    // Dispatch selector.
    let (dispatch, feedback_key) = match cfg.strategy {
        ParallelStrategy::StaticCoarse { quota } => {
            let sels = (0..batch)
                .map(|i| Selector::one(((i as u32) / quota).min(r - 1)))
                .collect();
            (g.selector_source(sels, r)?, None)
        }
        ParallelStrategy::StaticInterleaved => {
            let sels = (0..batch).map(|i| Selector::one(i as u32 % r)).collect();
            (g.selector_source(sels, r)?, None)
        }
        ParallelStrategy::Dynamic => {
            // Fig 16: initial round-robin fill merged with availability
            // signals fed back from region completions.
            let init =
                g.selector_source((0..r.min(batch as u32)).map(Selector::one).collect(), r)?;
            g.label_last("attn.init-rr");
            let avail_dim = Dim::dyn_regular(g.symbols().fresh("Avail"));
            let (fb, key) = g.feedback(
                StreamShape::new(vec![avail_dim]),
                ElemKind::Selector { num_targets: r },
            );
            let (dispatch, _prov) = g.eager_merge(&[&init, &fb])?;
            g.label_last("attn.dispatch-merge");
            (dispatch, Some(key))
        }
    };
    let routed = g.partition(&requests, &dispatch, 1, r)?;
    g.label_last("attn.dispatch");
    // Regions front their DMA engines with request-sized address queues
    // (addresses are 8 bytes — a KB-scale FIFO), so the dispatcher
    // streams a request in at port rate and moves on. Load imbalance —
    // not dispatch blocking — is then what separates the strategies, as
    // in Fig 14. Queues are provisioned for `kv_headroom` extra tokens
    // per request so a reused plan can serve later decode iterations.
    let max_tiles = kv
        .lengths
        .iter()
        .map(|&l| cfg.tiles_for(l + cfg.kv_headroom))
        .max()
        .unwrap_or(1);
    for region in &routed {
        g.set_capacity(region, (max_tiles + 8) as usize);
    }

    // Region pipelines: load KV tiles, score them, reduce per request.
    let mut completions = Vec::with_capacity(r as usize);
    for (i, region) in routed.iter().enumerate() {
        let kv_tiles = g.random_offchip_load(
            region,
            RandomAccessCfg::new(layout::KV, (1, tile_cols as u64)),
        )?;
        g.label_last("attn.kv-load");
        let scored = g.map(&kv_tiles, MapFn::Elementwise(EwOp::Silu), cfg.compute_bw)?;
        g.label_last("attn.score");
        let result = g.accum(&scored, 1, AccumFn::AddTiles, cfg.compute_bw)?;
        g.label_last("attn.reduce");
        let fk = g.fork(&result, 2)?;
        g.linear_offchip_store(&fk[0], layout::OUT + (i as u64) * layout::OUT_STRIDE)?;
        completions.push(fk[1].clone());
    }

    if let Some(key) = feedback_key {
        let refs: Vec<&StreamRef> = completions.iter().collect();
        let (_junk, avail) = g.eager_merge(&refs)?;
        g.label_last("attn.availability");
        g.fulfill_feedback(key, &avail)?;
    }
    Ok(ports)
}

/// Analytic per-request service demand in KV bytes — the quantity load
/// balancing distributes.
pub fn request_bytes(cfg: &AttentionCfg, len: u32) -> u64 {
    cfg.tiles_for(len) * cfg.kv_tile_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use step_sim::{SimConfig, Simulation};
    use step_traces::{KvTraceConfig, Variability, kv_lengths};

    fn small_cfg(strategy: ParallelStrategy) -> AttentionCfg {
        AttentionCfg {
            model: ModelConfig::qwen3_30b_a3b(),
            regions: 4,
            tokens_per_kv_tile: 16,
            // The score unit scans the region's KV buffer through one
            // on-chip memory unit (64 B/cycle, §5.1): at 4 modeled
            // FLOPs/element (2 bytes each) that is 128 FLOPs/cycle, which
            // the roofline turns into bytes/64 cycles per tile.
            compute_bw: 128,
            strategy,
            kv_headroom: 0,
        }
    }

    fn trace(batch: usize, v: Variability, seed: u64) -> KvTrace {
        kv_lengths(&KvTraceConfig {
            batch,
            variability: v,
            median_len: 512.0,
            max_len: 4096,
            seed,
            ..KvTraceConfig::default()
        })
    }

    fn run(cfg: &AttentionCfg, kv: &KvTrace) -> step_sim::SimReport {
        Simulation::new(attention_graph(cfg, kv).unwrap(), SimConfig::default())
            .unwrap()
            .run()
            .unwrap()
    }

    #[test]
    fn traffic_is_kv_bytes_plus_outputs() {
        let kv = trace(8, Variability::Medium, 3);
        let cfg = small_cfg(ParallelStrategy::StaticInterleaved);
        let report = run(&cfg, &kv);
        let expected_read: u64 = kv.lengths.iter().map(|&l| request_bytes(&cfg, l)).sum();
        assert_eq!(report.offchip_read, expected_read);
    }

    #[test]
    fn all_strategies_complete_and_read_same_bytes() {
        let kv = trace(16, Variability::High, 7);
        let reports: Vec<_> = [
            ParallelStrategy::StaticCoarse { quota: 4 },
            ParallelStrategy::StaticInterleaved,
            ParallelStrategy::Dynamic,
        ]
        .into_iter()
        .map(|s| run(&small_cfg(s), &kv))
        .collect();
        assert_eq!(reports[0].offchip_read, reports[1].offchip_read);
        assert_eq!(reports[1].offchip_read, reports[2].offchip_read);
    }

    #[test]
    fn dynamic_beats_coarse_at_small_batch() {
        // With batch == quota, coarse packs everything into region 0.
        let kv = trace(16, Variability::Medium, 11);
        let coarse = run(
            &small_cfg(ParallelStrategy::StaticCoarse { quota: 16 }),
            &kv,
        );
        let dynamic = run(&small_cfg(ParallelStrategy::Dynamic), &kv);
        assert!(
            dynamic.cycles * 2 < coarse.cycles,
            "dynamic {} vs coarse {}",
            dynamic.cycles,
            coarse.cycles
        );
    }

    #[test]
    fn dynamic_beats_interleaved_under_high_variance() {
        let kv = trace(32, Variability::High, 13);
        let inter = run(&small_cfg(ParallelStrategy::StaticInterleaved), &kv);
        let dynamic = run(&small_cfg(ParallelStrategy::Dynamic), &kv);
        assert!(
            dynamic.cycles < inter.cycles,
            "dynamic {} vs interleaved {}",
            dynamic.cycles,
            inter.cycles
        );
    }

    #[test]
    fn dynamic_dispatch_is_deterministic() {
        let kv = trace(16, Variability::High, 17);
        let a = run(&small_cfg(ParallelStrategy::Dynamic), &kv);
        let b = run(&small_cfg(ParallelStrategy::Dynamic), &kv);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn zero_regions_rejected() {
        let kv = trace(4, Variability::Low, 1);
        let mut cfg = small_cfg(ParallelStrategy::StaticInterleaved);
        cfg.regions = 0;
        assert!(attention_graph(&cfg, &kv).is_err());
    }
}
