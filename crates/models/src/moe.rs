//! The Mixture-of-Experts layer and its schedules (§5.2–§5.3).
//!
//! Tokens are routed to their top-k experts with `Partition`; each expert
//! packs its (dynamically many) rows into tiles, streams its SwiGLU
//! weights from off-chip, and computes. Three scheduling axes from the
//! paper:
//!
//! - **Static tiling**: rows are padded into `tile`-row tiles; an
//!   expert's weights are reloaded `⌈D_e/tile⌉` times (small tiles →
//!   more traffic, large tiles → more padding and on-chip memory).
//! - **Dynamic tiling** (§5.2): the first `Reshape` becomes a `Promote`,
//!   so `Accum` packs one dynamically-sized `[D_e, H]` tile and weights
//!   load exactly once per active expert.
//! - **Configuration time-multiplexing** (§5.3, Fig 11): experts share
//!   `regions` spatial pipelines; an `EagerMerge` forwards packed tiles
//!   in arrival order and `RandomOffChipLoad` fetches the owning
//!   expert's weights via an address generator.

use crate::config::ModelConfig;
use step_core::elem::{Elem, ElemKind, Selector};
use step_core::func::{AccumFn, BinOp, FlatMapFn, MapFn};
use step_core::graph::{GraphBuilder, StreamRef};
use step_core::ops::{LinearLoadCfg, RandomAccessCfg, StreamifyCfg};
use step_core::shape::StreamShape;
use step_core::tile::Tile;
use step_core::token;
use step_core::{DTYPE_BYTES, Result, StepError};
use step_traces::RoutingTrace;

/// Batch-dimension tiling strategy (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tiling {
    /// Pad each expert's rows into `tile`-row tiles.
    Static {
        /// Rows per tile.
        tile: u64,
    },
    /// One dynamically-sized tile per expert.
    Dynamic,
}

impl std::fmt::Display for Tiling {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tiling::Static { tile } => write!(f, "static({tile})"),
            Tiling::Dynamic => write!(f, "dynamic"),
        }
    }
}

/// MoE layer schedule.
#[derive(Debug, Clone)]
pub struct MoeCfg {
    /// Model dimensions.
    pub model: ModelConfig,
    /// Batch tiling strategy.
    pub tiling: Tiling,
    /// Spatial regions sharing a configuration (`None` = one region per
    /// expert, fully spatial).
    pub regions: Option<u32>,
    /// Compute bandwidth per matmul map, FLOPs/cycle.
    pub compute_bw: u64,
    /// Weight tile edge for hierarchical tiling (must divide hidden and
    /// intermediate dims).
    pub phys_tile: u64,
}

impl MoeCfg {
    /// A schedule with default strip width and compute allocation.
    pub fn new(model: ModelConfig, tiling: Tiling) -> MoeCfg {
        // Wider layers stream at a coarser tile edge: same traffic, far
        // fewer simulation events.
        let phys_tile =
            if model.moe_intermediate.is_multiple_of(256) && model.moe_intermediate >= 4096 {
                256
            } else {
                PT
            };
        MoeCfg {
            model,
            tiling,
            regions: None,
            compute_bw: 4096,
            phys_tile,
        }
    }

    /// Time-multiplexes the experts over `regions` shared pipelines.
    pub fn with_regions(mut self, regions: u32) -> MoeCfg {
        self.regions = Some(regions);
        self
    }

    fn w_bytes(&self) -> u64 {
        self.model.hidden * self.model.moe_intermediate * DTYPE_BYTES
    }
}

/// Default weight physical-tile edge (hierarchical tiling granularity).
pub const PT: u64 = 64;

/// Address layout for the MoE graph.
mod layout {
    /// Gate weights (per-expert stride = one matrix).
    pub const W1: u64 = 0x1_0000_0000;
    /// Up weights.
    pub const W3: u64 = 0x3_0000_0000;
    /// Down weights.
    pub const W2: u64 = 0x5_0000_0000;
    /// Output activations (per expert/region stride 16 MiB).
    pub const OUT: u64 = 0x7_0000_0000;
    /// Output stride.
    pub const OUT_STRIDE: u64 = 0x100_0000;
}

/// Packs an expert's routed rows into tiles per the tiling strategy,
/// yielding a rank-0 stream of packed tiles.
fn pack_rows(
    g: &mut GraphBuilder,
    rows: &StreamRef,
    tiling: Tiling,
    hidden: u64,
) -> Result<StreamRef> {
    let flat = g.flatten(rows, 0, 1)?; // [D_e]
    match tiling {
        Tiling::Static { tile } => {
            let pad = Elem::Tile(Tile::phantom(1, hidden as usize));
            let (chunks, _padding) = g.reshape(&flat, tile, Some(pad))?;
            g.accum(&chunks, 1, AccumFn::RetileRow, 64)
        }
        Tiling::Dynamic => {
            let promoted = g.promote(&flat)?;
            g.accum(&promoted, 1, AccumFn::RetileRow, 64)
        }
    }
}

/// The shared SwiGLU compute pipeline over packed tiles and
/// hierarchically-tiled weight streams.
///
/// All three weight matrices stream as `PT x PT`-element physical tiles
/// (Appendix B.2): the gate/up GEMMs reduce over hidden-dimension chunks
/// with `AddTiles` accumulators, and the down projection re-reads the
/// activation strip per output chunk through the Fig 18
/// `Bufferize`/`Streamify` pattern.
///
/// Inputs: `packed_data` and `down_trigger` are `[K]` rank-0 streams of
/// packed tiles; `w1`/`w3` are `[K, strips, H/PT]` physical-tile streams
/// and `w2` is `[K, H/PT, strips]`.
#[allow(clippy::too_many_arguments)]
fn swiglu_core(
    g: &mut GraphBuilder,
    packed_data: &StreamRef,
    down_trigger: &StreamRef,
    w1: &StreamRef,
    w3: &StreamRef,
    w2: &StreamRef,
    model: &ModelConfig,
    pt: u64,
    compute_bw: u64,
) -> Result<StreamRef> {
    let strips = model.moe_intermediate / pt;
    let hchunks = model.hidden / pt;

    // Broadcast the packed tile across intermediate strips, then split it
    // into hidden-dim chunks: [K] -> [K, strips] -> [K, strips, H/PT].
    let (ones, _) = g.reshape(packed_data, 1, None)?;
    let bx = g.expand_static(&ones, strips)?;
    let xs = g.flat_map(&bx, FlatMapFn::SplitCols { chunk: pt as usize })?;
    let xsf = g.fork(&xs, 2)?;

    // Gate and up projections with hidden-dim accumulation.
    let gpart = g.map2(&xsf[0], w1, MapFn::Matmul, compute_bw)?;
    let gate = g.accum(&gpart, 1, AccumFn::AddTiles, compute_bw)?;
    let upart = g.map2(&xsf[1], w3, MapFn::Matmul, compute_bw)?;
    let up = g.accum(&upart, 1, AccumFn::AddTiles, compute_bw)?;
    let act = g.map2(&gate, &up, MapFn::Binary(BinOp::SiluMul), compute_bw)?;

    // Down projection: buffer the activation strip and re-read it once
    // per output chunk (hierarchical tiling, Fig 18).
    let abufs = g.bufferize(&act, 1)?;
    let (dones, _) = g.reshape(down_trigger, 1, None)?;
    let dref = g.expand_static(&dones, hchunks)?;
    let arep = g.streamify(&abufs, &dref, StreamifyCfg::default())?;
    let dpart = g.map2(&arep, w2, MapFn::Matmul, compute_bw)?;
    g.accum(&dpart, 1, AccumFn::AddTiles, compute_bw)
}

/// The rebindable `Source` nodes of a MoE graph, for driving one
/// [`step_sim::SimPlan`] across decode iterations.
#[derive(Debug, Clone, Copy)]
pub struct MoePorts {
    /// The router's selector stream (`moe.router`): bind
    /// [`moe_router_tokens`] of the iteration's re-sampled routing.
    pub router: step_core::graph::NodeId,
    /// The token stream feeding the router's partition (`moe.tokens`):
    /// bind [`moe_token_stream`] of the iteration's token count. A
    /// serving iteration routes however many tokens its admitted set
    /// produced (decode tokens plus prefill chunks), so both sources
    /// rebind together with matching lengths.
    pub tokens: step_core::graph::NodeId,
}

/// The token stream played by the `moe.tokens` source for a batch of
/// `batch` tokens: one phantom `[1, hidden]` row per token, rank-1
/// chunks. Bind it together with [`moe_router_tokens`] of a same-length
/// routing trace when the per-iteration token count differs from the
/// build-time batch (continuous-batching serving).
pub fn moe_token_stream(batch: u64, hidden: u64) -> Vec<token::Token> {
    let groups: Vec<Vec<Elem>> = (0..batch)
        .map(|_| vec![Elem::Tile(Tile::phantom(1, hidden as usize))])
        .collect();
    token::rank1_from_groups(&groups)
}

/// The selector token stream played by the `moe.router` source for
/// `trace`. Build the graph once, then bind this stream per decode
/// iteration as routing is re-sampled; the expert count must match the
/// build-time trace (the graph's structure is derived from it), and the
/// token count must match the bound `moe.tokens` stream — equal to the
/// build-time batch when only the router is rebound.
pub fn moe_router_tokens(trace: &RoutingTrace) -> Vec<token::Token> {
    let sels = trace
        .assignments
        .iter()
        .map(|experts| Elem::Sel(Selector::multi(experts)));
    token::rank0_from_values(sels)
}

/// Builds the MoE layer for one iteration's routing `trace`; returns the
/// graph. Token contents are phantom (`[1, H]` tiles) — the schedule and
/// all metrics derive from the trace's routing alone.
///
/// # Errors
///
/// Returns [`StepError::Config`] for invalid region counts or tile sizes.
pub fn moe_graph(cfg: &MoeCfg, trace: &RoutingTrace) -> Result<step_core::Graph> {
    Ok(moe_graph_with_ports(cfg, trace)?.0)
}

/// Builds the MoE layer and returns the rebindable source ports
/// alongside the graph.
///
/// # Errors
///
/// Returns [`StepError::Config`] for invalid region counts or tile sizes.
pub fn moe_graph_with_ports(
    cfg: &MoeCfg,
    trace: &RoutingTrace,
) -> Result<(step_core::Graph, MoePorts)> {
    let mut g = GraphBuilder::new();
    let ports = build_moe(&mut g, cfg, trace)?;
    Ok((g.finish(), ports))
}

/// Appends the MoE layer to an existing builder, returning the
/// rebindable source ports.
///
/// # Errors
///
/// Returns [`StepError::Config`] for invalid configurations.
pub fn build_moe(g: &mut GraphBuilder, cfg: &MoeCfg, trace: &RoutingTrace) -> Result<MoePorts> {
    let model = &cfg.model;
    if trace.experts != model.experts {
        return Err(StepError::Config(format!(
            "trace has {} experts, model {}",
            trace.experts, model.experts
        )));
    }
    if !model.moe_intermediate.is_multiple_of(cfg.phys_tile)
        || !model.hidden.is_multiple_of(cfg.phys_tile)
    {
        return Err(StepError::Config(format!(
            "hidden and intermediate must be multiples of the {}-element physical tile",
            cfg.phys_tile
        )));
    }
    let experts = model.experts;
    let h = model.hidden;
    let batch = trace.assignments.len() as u64;

    // Token stream: one [1, H] row per token, rank-1 chunks.
    let tokens = g.source(
        moe_token_stream(batch, h),
        StreamShape::fixed(&[batch, 1]),
        ElemKind::tile(1, h),
    )?;
    g.label_last("moe.tokens");
    let sels: Vec<Selector> = trace
        .assignments
        .iter()
        .map(|experts| Selector::multi(experts))
        .collect();
    let sel = g.selector_source(sels, experts)?;
    g.label_last("moe.router");
    let ports = MoePorts {
        router: g.node_of(&sel),
        tokens: g.node_of(&tokens),
    };
    let routed = g.partition(&tokens, &sel, 1, experts)?;

    // Per-expert row packing.
    let mut packed: Vec<StreamRef> = Vec::with_capacity(experts as usize);
    for rows in &routed {
        packed.push(pack_rows(g, rows, cfg.tiling, h)?);
    }

    let w_bytes = cfg.w_bytes();
    match cfg.regions {
        None => {
            // Fully spatial: a dedicated pipeline and linear weight loads
            // per expert. Weights stream as PT x PT physical tiles with a
            // strip-outer / hidden-chunk-inner view so the compute core's
            // hidden-dimension accumulation lines up.
            let i = model.moe_intermediate;
            let pt = cfg.phys_tile;
            let strips = i / pt;
            let hchunks = h / pt;
            for (e, data) in packed.into_iter().enumerate() {
                let e = e as u64;
                let fk = g.fork(&data, 3)?;
                let trig = g.fork(&fk[0], 3)?;
                // W1/W3 grid is (H/pt rows, I/pt cols); read strip-outer.
                let up_view = LinearLoadCfg::new(layout::W1 + e * w_bytes, (h, i), (pt, pt))
                    .with_view((1, strips), (strips, hchunks));
                let w1 = g.linear_offchip_load(&trig[0], up_view)?;
                let up_view3 = LinearLoadCfg::new(layout::W3 + e * w_bytes, (h, i), (pt, pt))
                    .with_view((1, strips), (strips, hchunks));
                let w3 = g.linear_offchip_load(&trig[1], up_view3)?;
                // W2 grid is (I/pt rows, H/pt cols); read out-chunk-outer.
                let down_view = LinearLoadCfg::new(layout::W2 + e * w_bytes, (i, h), (pt, pt))
                    .with_view((1, hchunks), (hchunks, strips));
                let w2 = g.linear_offchip_load(&trig[2], down_view)?;
                let out = swiglu_core(g, &fk[1], &fk[2], &w1, &w3, &w2, model, pt, cfg.compute_bw)?;
                g.linear_offchip_store(&out, layout::OUT + e * layout::OUT_STRIDE)?;
            }
        }
        Some(regions) => {
            if regions == 0 || !experts.is_multiple_of(regions) {
                return Err(StepError::Config(format!(
                    "regions {regions} must divide experts {experts}"
                )));
            }
            let per = (experts / regions) as usize;
            let pt = cfg.phys_tile;
            let strips = model.moe_intermediate / pt;
            let hchunks = h / pt;
            let up_tiles = strips * hchunks;
            let tile_bytes = pt * pt * DTYPE_BYTES;
            for r in 0..regions as usize {
                let members = &packed[r * per..(r + 1) * per];
                let refs: Vec<&StreamRef> = members.iter().collect();
                let (tiles, sel) = g.eager_merge(&refs)?;
                g.label_last("moe.region-merge");
                let self0 = (r * per) as u64;
                // Weights for time-multiplexed regions are stored
                // pre-swizzled in streaming order (standard practice for
                // streamed weights), so the per-expert tile sequence is
                // linear in memory and the address generator enumerates it
                // directly.
                let sf = g.fork(&sel, 3)?;
                let tf = g.fork(&tiles, 2)?;
                let a1 = g.addr_gen(&sf[0], layout::W1 + self0 * w_bytes, up_tiles, tile_bytes)?;
                let a3 = g.addr_gen(&sf[1], layout::W3 + self0 * w_bytes, up_tiles, tile_bytes)?;
                let a2 = g.addr_gen(&sf[2], layout::W2 + self0 * w_bytes, up_tiles, tile_bytes)?;
                let w1 = g.random_offchip_load(
                    &a1,
                    RandomAccessCfg::new(layout::W1 + self0 * w_bytes, (pt, pt)),
                )?;
                let (w1, _) = g.reshape(&w1, hchunks, None)?;
                let w3 = g.random_offchip_load(
                    &a3,
                    RandomAccessCfg::new(layout::W3 + self0 * w_bytes, (pt, pt)),
                )?;
                let (w3, _) = g.reshape(&w3, hchunks, None)?;
                let w2 = g.random_offchip_load(
                    &a2,
                    RandomAccessCfg::new(layout::W2 + self0 * w_bytes, (pt, pt)),
                )?;
                let (w2, _) = g.reshape(&w2, strips, None)?;
                let out = swiglu_core(g, &tf[0], &tf[1], &w1, &w3, &w2, model, pt, cfg.compute_bw)?;
                g.linear_offchip_store(&out, layout::OUT + (r as u64) * layout::OUT_STRIDE)?;
            }
        }
    }
    Ok(ports)
}

/// Analytic expected weight traffic for a schedule: `Σ_e ⌈D_e/T⌉ · |W_e|`
/// (static) or one reload per active expert (dynamic). Useful for tests
/// and as the §4.2 symbolic prediction specialized to this graph.
pub fn expected_weight_traffic(cfg: &MoeCfg, trace: &RoutingTrace) -> u64 {
    let per_expert_bytes = cfg.model.expert_weight_bytes();
    trace
        .histogram()
        .iter()
        .map(|&d| {
            if d == 0 {
                0
            } else {
                match cfg.tiling {
                    Tiling::Static { tile } => (d as u64).div_ceil(tile) * per_expert_bytes,
                    Tiling::Dynamic => per_expert_bytes,
                }
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use step_sim::{SimConfig, Simulation};
    use step_traces::{RoutingConfig, expert_routing};

    fn tiny_model() -> ModelConfig {
        ModelConfig {
            name: "tiny",
            hidden: 64,
            moe_intermediate: 128,
            experts: 4,
            top_k: 2,
            q_heads: 4,
            kv_heads: 2,
            head_dim: 16,
            layers: 2,
        }
    }

    fn tiny_trace(batch: usize) -> RoutingTrace {
        expert_routing(&RoutingConfig {
            experts: 4,
            top_k: 2,
            batch,
            skew: 0.8,
            seed: 42,
        })
    }

    fn run(cfg: &MoeCfg, trace: &RoutingTrace) -> step_sim::SimReport {
        Simulation::new(moe_graph(cfg, trace).unwrap(), SimConfig::default())
            .unwrap()
            .run()
            .unwrap()
    }

    #[test]
    fn static_weight_traffic_matches_analytic() {
        let trace = tiny_trace(16);
        let cfg = MoeCfg::new(tiny_model(), Tiling::Static { tile: 4 });
        let report = run(&cfg, &trace);
        let expected_w = expected_weight_traffic(&cfg, &trace);
        // Output stores add padded-row writes on top of weight reads.
        assert_eq!(report.offchip_read, expected_w);
        assert!(report.offchip_write > 0);
    }

    #[test]
    fn dynamic_loads_each_active_expert_once() {
        let trace = tiny_trace(16);
        let cfg = MoeCfg::new(tiny_model(), Tiling::Dynamic);
        let report = run(&cfg, &trace);
        assert_eq!(report.offchip_read, expected_weight_traffic(&cfg, &trace));
        // Dynamic stores exactly the routed rows (no padding).
        let routed: u64 = trace.histogram().iter().map(|&d| d as u64).sum();
        assert_eq!(report.offchip_write, routed * 64 * 2);
    }

    #[test]
    fn dynamic_never_exceeds_static_traffic() {
        let trace = tiny_trace(32);
        for tile in [2, 4, 8] {
            let s = expected_weight_traffic(
                &MoeCfg::new(tiny_model(), Tiling::Static { tile }),
                &trace,
            );
            let d = expected_weight_traffic(&MoeCfg::new(tiny_model(), Tiling::Dynamic), &trace);
            assert!(d <= s, "tile {tile}: dynamic {d} > static {s}");
        }
    }

    #[test]
    fn dynamic_uses_less_onchip_memory_than_large_static() {
        let trace = tiny_trace(16);
        let stat = run(
            &MoeCfg::new(tiny_model(), Tiling::Static { tile: 16 }),
            &trace,
        );
        let dy = run(&MoeCfg::new(tiny_model(), Tiling::Dynamic), &trace);
        assert!(dy.onchip_memory < stat.onchip_memory);
        assert!(dy.cycles <= stat.cycles);
    }

    #[test]
    fn time_multiplexing_preserves_traffic_and_cuts_allocated_compute() {
        let trace = tiny_trace(16);
        let spatial = MoeCfg::new(tiny_model(), Tiling::Static { tile: 4 });
        let muxed = MoeCfg::new(tiny_model(), Tiling::Static { tile: 4 }).with_regions(2);
        let rs = run(&spatial, &trace);
        let rm = run(&muxed, &trace);
        assert_eq!(rs.offchip_read, rm.offchip_read);
        assert!(rm.allocated_compute < rs.allocated_compute);
        assert!(rm.compute_utilization() > rs.compute_utilization());
    }

    #[test]
    fn regions_must_divide_experts() {
        let trace = tiny_trace(8);
        let cfg = MoeCfg::new(tiny_model(), Tiling::Dynamic).with_regions(3);
        assert!(moe_graph(&cfg, &trace).is_err());
    }

    #[test]
    fn trace_model_mismatch_rejected() {
        let trace = expert_routing(&RoutingConfig {
            experts: 8,
            top_k: 2,
            batch: 4,
            skew: 0.5,
            seed: 1,
        });
        let cfg = MoeCfg::new(tiny_model(), Tiling::Dynamic);
        assert!(moe_graph(&cfg, &trace).is_err());
    }
}
