//! Shared per-iteration phase plumbing for the multi-iteration drivers.
//!
//! Both the fixed-batch decode driver ([`crate::e2e::run_decode`]) and
//! the continuous-batching serving driver ([`crate::serving::run_serve`])
//! step the same three per-layer phases — QKV GEMM, attention, MoE —
//! across iterations by rebinding one frozen [`SimPlan`] per phase
//! instead of rebuilding graphs. This module is the single home for the
//! rebinding and steady-state machinery so the two drivers cannot drift:
//!
//! - [`bind_attention`] / [`bind_moe`] build the per-iteration
//!   [`RunBinding`]s from a KV trace / routing trace;
//! - [`qkv_fingerprint`] / [`canonical_routing`] /
//!   [`moe_canonical_key`] are the report-memoization machinery for the
//!   two memoizable phases: the QKV graph has no rebindable inputs (its
//!   report is a pure function of `(model, tokens, SimConfig)`, so the
//!   graph identity *is* the key), and MoE routings that are the same
//!   multiset of expert sets can be **canonicalized** to one binding so
//!   they share one exact cache entry. The serving driver routes both
//!   phases through one [`step_sim::ReportCache`];
//! - [`debug_assert_steady`] pins the steady-state contract both drivers
//!   rely on: after the warmup iteration materializes the pooled run
//!   state, every later iteration must reset it in place
//!   (`run_allocs == 0`, `pool_resets == 1`) — plans are never rebuilt
//!   and run state is never reallocated inside the loop.

use crate::attention::{AttentionCfg, AttentionPorts, attention_request_tokens};
use crate::config::ModelConfig;
use crate::moe::{MoePorts, moe_router_tokens, moe_token_stream};
use crate::swiglu::{GemmCfg, build_gemm};
use step_core::Result;
use step_core::graph::GraphBuilder;
use step_sim::{Fingerprint, RunBinding, SimConfig, SimReport};
use step_traces::{KvTrace, RoutingTrace};

/// The per-iteration attention binding: the `attn.requests` source
/// replays the iteration's KV tile-address stream (one rank-1 group per
/// batch slot). The plan must have been built with queue provisioning
/// ([`AttentionCfg::kv_headroom`] or an envelope-length build trace)
/// covering every bound length.
pub fn bind_attention(cfg: &AttentionCfg, ports: &AttentionPorts, kv: &KvTrace) -> RunBinding {
    let mut b = RunBinding::new();
    b.bind_source(ports.requests, attention_request_tokens(cfg, kv));
    b
}

/// The per-iteration MoE binding: the `moe.router` selector source
/// replays the iteration's routing and the `moe.tokens` source a
/// matching-length token stream, so an iteration may route fewer (or
/// more) tokens than the build-time batch — the serving driver's ragged
/// iterations rebind both, the fixed-batch decode driver binds the same
/// count every iteration.
pub fn bind_moe(ports: &MoePorts, hidden: u64, routing: &RoutingTrace) -> RunBinding {
    let mut b = RunBinding::new();
    b.bind_source(ports.router, moe_router_tokens(routing));
    b.bind_source(
        ports.tokens,
        moe_token_stream(routing.assignments.len() as u64, hidden),
    );
    b
}

/// MoE graphs run multi-million-cycle simulations; a coarser execution
/// window is ordering-equivalent there and much faster.
pub fn moe_sim_config() -> SimConfig {
    SimConfig {
        horizon_step: 512,
        ..SimConfig::default()
    }
}

/// The QKV-generation + output-projection phase as one fused dense GEMM
/// graph over `tokens` tokens. Decode processes one token per request,
/// so the graph depends only on `(model, tokens)` — across iterations
/// with the same token count it is the same program.
pub fn qkv_graph(model: &ModelConfig, tokens: usize) -> Result<step_core::Graph> {
    let n = (model.q_heads + 2 * model.kv_heads) * model.head_dim + model.hidden;
    let tile_n = [256u64, 128, 64, 32]
        .into_iter()
        .find(|t| n.is_multiple_of(*t))
        .unwrap_or(n);
    let mut g = GraphBuilder::new();
    build_gemm(
        &mut g,
        &GemmCfg {
            batch: tokens as u64,
            hidden: model.hidden,
            n,
            tile_batch: 64.min(tokens as u64),
            tile_n,
            x_addr: 0x100_0000,
            w_addr: 0x1000_0000,
            out_addr: 0x8000_0000,
            compute_bw: 8192,
        },
    )?;
    Ok(g.finish())
}

/// The builder-fingerprint half of the QKV phase's report-cache key.
///
/// The QKV graph has no rebindable sources: its report is a pure
/// function of `(model, tokens, SimConfig)`, so the graph's identity is
/// the whole binding-independent key (the [`RunBinding`] half is the
/// empty binding's fingerprint). Folds exactly the model fields
/// [`qkv_graph`] reads, so two models whose QKV GEMMs coincide share
/// their reports.
pub fn qkv_fingerprint(model: &ModelConfig, tokens: usize) -> u64 {
    let mut fp = Fingerprint::new("phase.qkv");
    fp.push_u64(model.hidden)
        .push_u64(model.q_heads)
        .push_u64(model.kv_heads)
        .push_u64(model.head_dim)
        .push_u64(tokens as u64);
    fp.finish()
}

/// The canonical form of a routing trace: each per-token expert set
/// sorted and deduped (exactly the normalization `Selector::multi`
/// applies when the routing is bound, so this half changes nothing the
/// engine sees), then the whole collection sorted — erasing token
/// order. Two routings that are permutations of the same **multiset**
/// of expert sets canonicalize to the identical trace, and therefore to
/// the identical [`RunBinding`] and — by the determinism contract — the
/// identical report.
///
/// This is how the serving driver's
/// [`crate::serving::ServeCfg::moe_canonical`] mode makes order-permuted
/// iterations share one *exact* report-cache entry. Canonicalizing the
/// binding, rather than nominating a canonical *replay* class on the
/// cache, is deliberate: differential measurement
/// ([`step_sim::ReportCache::checked`]) refuted the folk invariance
/// that token order cannot matter — permuting which token carries which
/// expert set changes token adjacency, with it how the engine coalesces
/// channel runs, and through scheduling even `cycles` and `rounds`
/// drift (measured: 1979 vs 1981 cycles on a 4-expert plan), so an
/// order-permuted replay is *not* aggregate-equivalent and may not be
/// substituted. Re-simulating the canonical order is exact by
/// construction; `crates/models/tests/report_memo_conformance.rs`
/// carries both the proof and the refutation.
pub fn canonical_routing(routing: &RoutingTrace) -> RoutingTrace {
    let mut sets: Vec<Vec<u32>> = routing
        .assignments
        .iter()
        .map(|set| {
            let mut s = set.clone();
            s.sort_unstable();
            s.dedup();
            s
        })
        .collect();
    sets.sort_unstable();
    RoutingTrace {
        assignments: sets,
        experts: routing.experts,
    }
}

/// The order-invariant identity of a routing's expert-set multiset —
/// a fingerprint of [`canonical_routing`]: equal keys iff the two
/// routings canonicalize to the same trace. The histogram (per-expert
/// token counts) would be weaker — equal histograms with different
/// token↔set pairings change even the per-expert workloads — which is
/// why the key folds the multiset and not the histogram.
pub fn moe_canonical_key(routing: &RoutingTrace) -> u64 {
    let canon = canonical_routing(routing);
    let mut fp = Fingerprint::new("phase.moe.canonical");
    fp.push_u64(u64::from(canon.experts));
    fp.push_u64(canon.assignments.len() as u64);
    for set in &canon.assignments {
        fp.push_u64(set.len() as u64);
        for e in set {
            fp.push_u64(u64::from(*e));
        }
    }
    fp.finish()
}

/// Pins the steady-state contract of the multi-iteration drivers: once
/// `warmed` (any iteration after the first per phase), a pooled run must
/// have reset the parked state in place — no plan rebuilds, no run-state
/// reallocation (`run_allocs == 0`, `pool_resets == 1`). Debug-only, like
/// the invariant it documents; release builds rely on the conformance
/// suites instead.
pub fn debug_assert_steady(report: &SimReport, warmed: bool) {
    debug_assert!(
        !warmed || (report.run_allocs, report.pool_resets) == (0, 1),
        "steady-state iteration rebuilt run state (run_allocs {}, pool_resets {})",
        report.run_allocs,
        report.pool_resets
    );
}
