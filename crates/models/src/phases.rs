//! Shared per-iteration phase plumbing for the multi-iteration drivers.
//!
//! Both the fixed-batch decode driver ([`crate::e2e::run_decode`]) and
//! the continuous-batching serving driver ([`crate::serving::run_serve`])
//! step the same three per-layer phases — QKV GEMM, attention, MoE —
//! across iterations by rebinding one frozen [`SimPlan`] per phase
//! instead of rebuilding graphs. This module is the single home for the
//! rebinding and steady-state machinery so the two drivers cannot drift:
//!
//! - [`bind_attention`] / [`bind_moe`] build the per-iteration
//!   [`RunBinding`]s from a KV trace / routing trace;
//! - [`QkvCache`] memoizes the QKV phase per token count (the QKV graph
//!   has no rebindable inputs — its report is a pure function of the
//!   token count, so each distinct count simulates exactly once);
//! - [`debug_assert_steady`] pins the steady-state contract both drivers
//!   rely on: after the warmup iteration materializes the pooled run
//!   state, every later iteration must reset it in place
//!   (`run_allocs == 0`, `pool_resets == 1`) — plans are never rebuilt
//!   and run state is never reallocated inside the loop.

use crate::attention::{AttentionCfg, AttentionPorts, attention_request_tokens};
use crate::config::ModelConfig;
use crate::moe::{MoePorts, moe_router_tokens, moe_token_stream};
use crate::swiglu::{GemmCfg, build_gemm};
use std::collections::BTreeMap;
use step_core::Result;
use step_core::graph::GraphBuilder;
use step_sim::{RunBinding, SimConfig, SimPlan, SimReport};
use step_traces::{KvTrace, RoutingTrace};

/// The per-iteration attention binding: the `attn.requests` source
/// replays the iteration's KV tile-address stream (one rank-1 group per
/// batch slot). The plan must have been built with queue provisioning
/// ([`AttentionCfg::kv_headroom`] or an envelope-length build trace)
/// covering every bound length.
pub fn bind_attention(cfg: &AttentionCfg, ports: &AttentionPorts, kv: &KvTrace) -> RunBinding {
    let mut b = RunBinding::new();
    b.bind_source(ports.requests, attention_request_tokens(cfg, kv));
    b
}

/// The per-iteration MoE binding: the `moe.router` selector source
/// replays the iteration's routing and the `moe.tokens` source a
/// matching-length token stream, so an iteration may route fewer (or
/// more) tokens than the build-time batch — the serving driver's ragged
/// iterations rebind both, the fixed-batch decode driver binds the same
/// count every iteration.
pub fn bind_moe(ports: &MoePorts, hidden: u64, routing: &RoutingTrace) -> RunBinding {
    let mut b = RunBinding::new();
    b.bind_source(ports.router, moe_router_tokens(routing));
    b.bind_source(
        ports.tokens,
        moe_token_stream(routing.assignments.len() as u64, hidden),
    );
    b
}

/// MoE graphs run multi-million-cycle simulations; a coarser execution
/// window is ordering-equivalent there and much faster.
pub fn moe_sim_config() -> SimConfig {
    SimConfig {
        horizon_step: 512,
        ..SimConfig::default()
    }
}

/// The QKV-generation + output-projection phase as one fused dense GEMM
/// graph over `tokens` tokens. Decode processes one token per request,
/// so the graph depends only on `(model, tokens)` — across iterations
/// with the same token count it is the same program.
pub fn qkv_graph(model: &ModelConfig, tokens: usize) -> Result<step_core::Graph> {
    let n = (model.q_heads + 2 * model.kv_heads) * model.head_dim + model.hidden;
    let tile_n = [256u64, 128, 64, 32]
        .into_iter()
        .find(|t| n.is_multiple_of(*t))
        .unwrap_or(n);
    let mut g = GraphBuilder::new();
    build_gemm(
        &mut g,
        &GemmCfg {
            batch: tokens as u64,
            hidden: model.hidden,
            n,
            tile_batch: 64.min(tokens as u64),
            tile_n,
            x_addr: 0x100_0000,
            w_addr: 0x1000_0000,
            out_addr: 0x8000_0000,
            compute_bw: 8192,
        },
    )?;
    Ok(g.finish())
}

/// Memoized QKV phase reports, keyed by token count.
///
/// The QKV graph has no rebindable sources: its report is a pure
/// function of `(model, tokens, SimConfig)`, so each distinct token
/// count is simulated exactly once and served from the cache afterwards
/// — in steady state (a full serving batch, or any fixed-batch decode
/// loop) the QKV phase performs no simulation work at all.
#[derive(Debug, Default)]
pub struct QkvCache {
    cfg: SimConfig,
    reports: BTreeMap<usize, SimReport>,
}

impl QkvCache {
    /// An empty cache whose simulations run under `cfg`.
    pub fn new(cfg: SimConfig) -> QkvCache {
        QkvCache {
            cfg,
            reports: BTreeMap::new(),
        }
    }

    /// The QKV report for `tokens` tokens, simulating on first use.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction and simulation errors.
    pub fn report(&mut self, model: &ModelConfig, tokens: usize) -> Result<&SimReport> {
        if !self.reports.contains_key(&tokens) {
            let report = SimPlan::new(qkv_graph(model, tokens)?, self.cfg.clone())?.run()?;
            self.reports.insert(tokens, report);
        }
        Ok(&self.reports[&tokens])
    }

    /// Distinct token counts simulated so far.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Whether no token count has been simulated yet.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }
}

/// Pins the steady-state contract of the multi-iteration drivers: once
/// `warmed` (any iteration after the first per phase), a pooled run must
/// have reset the parked state in place — no plan rebuilds, no run-state
/// reallocation (`run_allocs == 0`, `pool_resets == 1`). Debug-only, like
/// the invariant it documents; release builds rely on the conformance
/// suites instead.
pub fn debug_assert_steady(report: &SimReport, warmed: bool) {
    debug_assert!(
        !warmed || (report.run_allocs, report.pool_resets) == (0, 1),
        "steady-state iteration rebuilt run state (run_allocs {}, pool_resets {})",
        report.run_allocs,
        report.pool_resets
    );
}
