//! Continuous-batching serving driver — the "millions of users" workload.
//!
//! The paper's figures step a *fixed* batch through decode; a serving
//! system sees a churning one. This driver runs an open-loop request
//! trace ([`step_traces::arrivals`]) against the three per-layer phases
//! (QKV GEMM, attention, MoE) with the scheduling loop real engines use:
//!
//! - **Admission**: at each iteration boundary, arrived requests are
//!   admitted into free batch slots (up to [`ServeCfg::slots`]) in
//!   arrival order;
//! - **Eviction**: a request that generates its last token leaves at the
//!   end of the iteration, freeing its slot for the next admission;
//! - **Prefill/decode interleaving**: every iteration's token budget
//!   ([`ServeCfg::token_budget`]) is spent on decode tokens first (one
//!   per decoding request), then on prefill chunks of admitted requests
//!   ([`ServeCfg::prefill_chunk`] — the chunked-prefill scenario axis:
//!   `Some(c)` caps a request's per-iteration prefill at `c` tokens so
//!   decode latency stays bounded, `None` lets a prompt prefill as fast
//!   as the remaining budget allows);
//! - **Per-iteration rebinding**: the batch composition changes every
//!   iteration, and rides in on [`step_sim::RunBinding`] source
//!   rebinding over one frozen [`SimPlan`] per phase — the attention
//!   plan's request source replays each slot's current KV context, the
//!   MoE plan's token + router sources replay the iteration's routed
//!   tokens. Plans are built once against the trace's admitted-set
//!   envelope ([`RequestTrace::max_ctx`] provisions the attention
//!   dispatch queues; [`ServeCfg::token_budget`] sizes the MoE build
//!   batch) and each phase keeps one [`RunPool`], so steady-state
//!   iterations neither rebuild plans nor reallocate run state
//!   ([`crate::phases::debug_assert_steady`]).
//!
//! **Modeling notes.** A vacant slot is bound as a minimal one-tile stub
//! request (the dispatch selector's batch width is fixed at freeze
//! time); under load the batch is full and no stubs exist. A prefilling
//! request's attention cost is one scan over its context-so-far KV tiles
//! (a FlashAttention-style chunk pass); its GEMM-side cost scales
//! exactly with the chunk's tokens through the QKV and MoE phases.
//! Phase latencies compose serially per layer, as in [`crate::e2e`].
//!
//! **Metrics.** `TTFT` (time to first token) is the span from a
//! request's *arrival* (queueing included) to the end of the iteration
//! that finishes its prefill — the iteration that produces its first
//! output token. `TPOT` (time per output token) is the span from first
//! token to completion divided by the remaining `output - 1` tokens.
//! *Goodput* is completed requests per million cycles of serving time
//! (idle gaps included); *offered load* is the trace's arrival rate.
//! HBM pressure is total off-chip traffic over busy cycles, reported
//! both as bytes/cycle and as utilization of the configured peak.
//!
//! **Determinism.** A serving run is a pure function of
//! `(model, variant, trace, ServeCfg minus threads)`: same-seed reruns
//! are bit-identical across thread counts and across pooled vs fresh
//! run state, and each iteration replays offline — a fresh one-shot
//! [`step_sim::Simulation`] of the same phase graph with the same
//! binding reproduces its cycles and fires bit-exactly
//! (`crates/models/tests/serving_conformance.rs`).
//!
//! **Report memoization.** Determinism also means an iteration whose
//! phase signature repeats need not run the engine at all:
//! [`run_serve_memo`] routes the QKV and MoE phases through a
//! [`ReportCache`] keyed by `(plan content key, binding fingerprint)` —
//! QKV under the empty binding per token count (the direct
//! generalization of the per-count memo the drivers used before), MoE
//! under the iteration's routed-token binding. Attention always
//! simulates (every slot-context vector under a churning batch is
//! effectively unique). Exact-layer replays are bit-identical by the
//! determinism contract, so the report minus the host-side cache
//! telemetry ([`ServeReport::report_cache`],
//! [`ServeReport::engine_fires`], which [`ServeReport`]'s `PartialEq`
//! excludes) is unchanged by caching —
//! `crates/models/tests/report_memo_conformance.rs` holds cache-on,
//! cache-off, and differential [`ReportCache::checked`] runs together.
//! [`ServeCfg::moe_canonical`] additionally canonicalizes each
//! iteration's routing to its multiset order
//! ([`crate::phases::canonical_routing`]) before binding, so
//! order-permuted routings collapse to one exact cache entry and the
//! replays stay bit-identical — an opt-in modeling choice, because the
//! engine schedules a token *stream* and erasing the sampled order
//! perturbs the phase's cycle count slightly.

use crate::attention::{AttentionCfg, attention_graph_with_ports};
use crate::config::ModelConfig;
use crate::e2e::E2eVariant;
use crate::moe::{MoeCfg, moe_graph_with_ports};
use crate::phases::{
    bind_attention, bind_moe, canonical_routing, debug_assert_steady, moe_sim_config,
    qkv_fingerprint, qkv_graph,
};
use std::sync::Arc;
use step_core::{Graph, Result, StepError};
use step_sim::{
    Fingerprint, ReportCache, ReportCacheStats, Resolution, RunBinding, RunPool, SimConfig,
    SimPlan, SimReport, plan_content_key,
};
use step_traces::{KvTrace, RequestTrace, RoutingConfig, RoutingTrace, expert_routing};

/// Configuration of the continuous-batching serving driver.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeCfg {
    /// Batch slots: the maximum number of concurrently live requests.
    pub slots: usize,
    /// Maximum tokens processed per iteration across the batch (decode
    /// tokens plus prefill chunks). Must be at least `slots` so every
    /// decoding request always fits.
    pub token_budget: usize,
    /// Chunked prefill: `Some(c)` caps each request's per-iteration
    /// prefill at `c` tokens; `None` prefills as fast as the remaining
    /// token budget allows.
    pub prefill_chunk: Option<u32>,
    /// Expert-popularity skew of the per-iteration routing samples.
    pub skew: f64,
    /// Seed of the per-iteration routing re-samples (the arrival trace
    /// carries its own seed).
    pub seed: u64,
    /// Simulation worker threads per phase run (results are
    /// thread-count-independent by the engine's determinism contract).
    pub threads: usize,
    /// Reuse pooled run state across iterations (the steady-state
    /// alloc-free path). `false` materializes fresh state every
    /// iteration — bit-identical, for differential testing only.
    pub pooled: bool,
    /// Safety cap on serving iterations; hitting it truncates the run
    /// (reported via [`ServeReport::truncated`]).
    pub max_iterations: u32,
    /// TTFT service-level objective in cycles: a waiting request whose
    /// queueing delay already exceeds this can no longer meet the SLO
    /// and is **shed** at the admission boundary instead of occupying a
    /// slot (counted in [`ServeReport::shed_total`]). `None` (the
    /// default) admits everything. Deterministic: shedding depends only
    /// on the serving clock and the trace.
    pub ttft_slo: Option<u64>,
    /// Canonicalize each iteration's MoE routing
    /// ([`crate::phases::canonical_routing`]: the per-token expert sets
    /// sorted into multiset order) before binding, so iterations whose
    /// routings differ only in token order produce the *identical*
    /// binding and share one exact report-cache entry — a bit-identical
    /// replay by the determinism contract, not an approximate one.
    ///
    /// This is a modeling choice, which is why it is opt-in: token
    /// order inside an MoE batch is an artifact of slot enumeration,
    /// but the engine schedules a token *stream*, so erasing the order
    /// perturbs run coalescing and with it the phase's cycle count
    /// slightly (off-chip traffic, FLOPs, and token counts are exactly
    /// order-invariant; a canonical *replay* of unsorted bindings was
    /// measured to drift even on cycles, which is why this knob rebinds
    /// instead of nominating a cache-level canonical class). Off by
    /// default: the default path simulates the sampled order, and the
    /// bit-identity conformance contract applies as-is. Worth switching
    /// on for low-routing-entropy regimes (high [`ServeCfg::skew`], few
    /// live expert sets), where multiset collisions across iterations
    /// actually occur.
    pub moe_canonical: bool,
}

impl Default for ServeCfg {
    fn default() -> ServeCfg {
        ServeCfg {
            slots: 8,
            token_budget: 32,
            prefill_chunk: Some(16),
            skew: 0.8,
            seed: 7,
            threads: 1,
            pooled: true,
            max_iterations: 100_000,
            ttft_slo: None,
            moe_canonical: false,
        }
    }
}

/// One serving iteration's composition and simulated phases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeIteration {
    /// Iteration index.
    pub iter: u32,
    /// Serving clock at iteration start, cycles.
    pub start: u64,
    /// Live requests occupying slots this iteration.
    pub live: u32,
    /// Requests admitted at this iteration's boundary.
    pub admitted: u32,
    /// Requests completing (and evicted) at this iteration's end.
    pub completed: u32,
    /// Tokens processed this iteration (decode + prefill chunks).
    pub tokens: u32,
    /// Decode tokens among them (one per decoding request).
    pub decode_tokens: u32,
    /// Per-slot KV context bound into the attention plan this iteration
    /// (vacant slots — and prefill slots starved of tokens by budget
    /// exhaustion — carry the one-tile stub length of 1).
    pub slot_ctx: Vec<u32>,
    /// QKV + output projection cycles.
    pub qkv_cycles: u64,
    /// Attention cycles over the iteration's KV contexts.
    pub attn_cycles: u64,
    /// MoE cycles under the iteration's routed tokens.
    pub moe_cycles: u64,
    /// One decoder layer (sum of phases).
    pub layer_cycles: u64,
    /// Node fires across the three phase runs.
    pub fires: u64,
    /// Channel run operations across the three phase runs.
    pub chan_runs: u64,
    /// Off-chip traffic across the three phase runs, bytes (one layer).
    pub offchip_traffic: u64,
}

/// Per-request serving outcome, in request-id order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOutcome {
    /// Trace request id.
    pub id: u32,
    /// Arrival time, cycles.
    pub arrival: u64,
    /// Admission time (start of the first iteration the request ran in).
    pub admitted: u64,
    /// End of the iteration that produced the first output token.
    pub first_token: u64,
    /// End of the iteration that produced the last output token.
    pub finished: u64,
    /// Prompt length, tokens.
    pub prompt: u32,
    /// Output length, tokens.
    pub output: u32,
}

impl ServeOutcome {
    /// Time to first token: arrival (queueing included) to first output.
    pub fn ttft(&self) -> u64 {
        self.first_token - self.arrival
    }

    /// Time per output token after the first, in cycles (0 for
    /// single-token outputs).
    pub fn tpot(&self) -> f64 {
        if self.output <= 1 {
            0.0
        } else {
            (self.finished - self.first_token) as f64 / (self.output - 1) as f64
        }
    }
}

/// Nearest-rank percentiles of a latency population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Percentiles {
    /// Nearest-rank percentiles of a population, or `None` when it is
    /// empty — an all-single-token-output trace has *no* TPOT
    /// population, which is a different fact than a measured 0.0.
    pub fn of(mut xs: Vec<f64>) -> Option<Percentiles> {
        if xs.is_empty() {
            return None;
        }
        xs.sort_by(f64::total_cmp);
        let at = |q: f64| {
            let rank = (q * xs.len() as f64).ceil() as usize;
            xs[rank.clamp(1, xs.len()) - 1]
        };
        Some(Percentiles {
            p50: at(0.50),
            p95: at(0.95),
            p99: at(0.99),
        })
    }
}

/// The serving driver's aggregate results.
///
/// Equality ([`PartialEq`]) covers everything the simulation computed
/// and deliberately **excludes** the host-side execution telemetry —
/// [`ServeReport::report_cache`] and [`ServeReport::engine_fires`] —
/// which says how the run was *executed* (which iterations replayed
/// from a cache), not what it *measured*. Cached, uncached, serial, and
/// service-scheduled runs of one job therefore compare equal, which is
/// exactly the bit-identical-replay contract the conformance suites
/// assert; the telemetry fields are pinned separately where the cache
/// population is deterministic (the single-cell quick sweep).
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-iteration compositions and phase cycles.
    pub iterations: Vec<ServeIteration>,
    /// Per-request outcomes (completed requests, id order).
    pub outcomes: Vec<ServeOutcome>,
    /// Serving clock at the end of the run (idle gaps included), cycles.
    pub total_cycles: u64,
    /// Cycles spent inside iterations (`Σ layer_cycles × layers`).
    pub busy_cycles: u64,
    /// Whole-model off-chip traffic, bytes (`Σ phase traffic × layers`).
    pub offchip_traffic: u64,
    /// Requests admitted into slots.
    pub admitted_total: u32,
    /// Requests evicted after completing.
    pub evicted_total: u32,
    /// Requests shed at the admission boundary for blowing
    /// [`ServeCfg::ttft_slo`] while waiting (zero when no SLO is set).
    pub shed_total: u32,
    /// Node fires summed over all phase runs — the *logical* total, as
    /// if every phase had simulated (replayed reports contribute their
    /// recorded fires), so it is cache-independent and comparable across
    /// execution strategies.
    pub total_fires: u64,
    /// Channel run operations summed over all phase runs (logical, like
    /// [`ServeReport::total_fires`]).
    pub chan_runs: u64,
    /// Node fires the engine *actually executed* for this run: phases
    /// resolved as [`step_sim::Resolution::Simulated`] only. The gap to
    /// [`ServeReport::total_fires`] is the work report memoization
    /// elided; CI budgets it on the warm quick cell. Host-side
    /// execution telemetry — excluded from equality.
    pub engine_fires: u64,
    /// This run's report-cache requests by resolution (request-scoped:
    /// counts this run's phase requests even when the cache is shared
    /// with other jobs). `hits + misses` equals the QKV + MoE phase
    /// requests made; attention never consults the cache. Host-side
    /// execution telemetry — excluded from equality.
    pub report_cache: ReportCacheStats,
    /// TTFT percentiles, cycles (`None` when no request completed).
    pub ttft: Option<Percentiles>,
    /// TPOT percentiles, cycles per token (multi-token outputs only;
    /// `None` when every completed output was a single token — an empty
    /// population, not a zero latency).
    pub tpot: Option<Percentiles>,
    /// Completed requests per million cycles of serving time.
    pub goodput_per_mcycle: f64,
    /// The trace's offered load, requests per million cycles.
    pub offered_per_mcycle: f64,
    /// Off-chip bytes per busy cycle — HBM pressure under load.
    pub hbm_bytes_per_cycle: f64,
    /// Fraction of peak off-chip bandwidth used while busy.
    pub hbm_utilization: f64,
    /// Whether the run hit [`ServeCfg::max_iterations`] before draining.
    pub truncated: bool,
}

impl PartialEq for ServeReport {
    fn eq(&self, other: &ServeReport) -> bool {
        // Exhaustive destructuring: adding a field forces a decision on
        // whether it is simulation output (compare) or host-side
        // execution telemetry (ignore, like the two below).
        let ServeReport {
            iterations,
            outcomes,
            total_cycles,
            busy_cycles,
            offchip_traffic,
            admitted_total,
            evicted_total,
            shed_total,
            total_fires,
            chan_runs,
            engine_fires: _,
            report_cache: _,
            ttft,
            tpot,
            goodput_per_mcycle,
            offered_per_mcycle,
            hbm_bytes_per_cycle,
            hbm_utilization,
            truncated,
        } = self;
        *iterations == other.iterations
            && *outcomes == other.outcomes
            && *total_cycles == other.total_cycles
            && *busy_cycles == other.busy_cycles
            && *offchip_traffic == other.offchip_traffic
            && *admitted_total == other.admitted_total
            && *evicted_total == other.evicted_total
            && *shed_total == other.shed_total
            && *total_fires == other.total_fires
            && *chan_runs == other.chan_runs
            && *ttft == other.ttft
            && *tpot == other.tpot
            && *goodput_per_mcycle == other.goodput_per_mcycle
            && *offered_per_mcycle == other.offered_per_mcycle
            && *hbm_bytes_per_cycle == other.hbm_bytes_per_cycle
            && *hbm_utilization == other.hbm_utilization
            && *truncated == other.truncated
    }
}

/// The deterministic per-iteration routing re-sample: iteration `iter`
/// routes its `tokens` tokens with this trace. Public so the offline
/// conformance replay can rebuild exactly what the driver bound.
pub fn iteration_routing(
    model: &ModelConfig,
    cfg: &ServeCfg,
    iter: u32,
    tokens: usize,
) -> RoutingTrace {
    expert_routing(&RoutingConfig {
        experts: model.experts,
        top_k: model.top_k,
        batch: tokens,
        skew: cfg.skew,
        seed: cfg.seed ^ 0x5e21 ^ u64::from(iter).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    })
}

/// The build-time MoE routing trace: `token_budget` tokens under a
/// dedicated salt (every iteration rebinds over it, so only its batch
/// width matters). Public for the offline conformance replay.
pub fn moe_build_trace(model: &ModelConfig, cfg: &ServeCfg) -> RoutingTrace {
    expert_routing(&RoutingConfig {
        experts: model.experts,
        top_k: model.top_k,
        batch: cfg.token_budget,
        skew: cfg.skew,
        seed: cfg.seed ^ 0xb111d,
    })
}

/// The build-time attention KV trace: every slot provisioned for the
/// trace's admitted-set envelope ([`RequestTrace::max_ctx`]), so the
/// frozen plan's dispatch queues fit any context a serving iteration can
/// bind. Public for the offline conformance replay.
pub fn envelope_kv(trace: &RequestTrace, cfg: &ServeCfg) -> KvTrace {
    KvTrace {
        lengths: vec![trace.max_ctx().max(1); cfg.slots],
    }
}

/// A provider of frozen simulation plans.
///
/// The serving driver asks for each phase plan by **(builder
/// fingerprint, [`SimConfig`])** instead of freezing it inline, so a
/// sweep service can satisfy the request from a shared cache — many
/// serving cells over one trace envelope then pay plan freeze once. The
/// `build` closure produces the phase graph on a miss and is invoked at
/// most once per call.
///
/// The fingerprint must cover *everything* the builder consumed; two
/// calls with equal fingerprints and config-fingerprints
/// ([`SimConfig::fingerprint`], which excludes `threads`) must describe
/// interchangeable plans.
pub trait PlanSource {
    /// Returns a frozen plan for `(fingerprint, cfg)`, building the
    /// graph via `build` if no equivalent plan is available.
    fn plan(
        &self,
        fingerprint: u64,
        cfg: &SimConfig,
        build: &mut dyn FnMut() -> Result<Graph>,
    ) -> Result<Arc<SimPlan>>;
}

/// The trivial [`PlanSource`]: always builds a fresh plan. This is the
/// serial path — [`run_serve`] uses it — and the differential baseline
/// the sweep service's cached path is held bit-identical to.
#[derive(Debug, Clone, Copy, Default)]
pub struct FreshPlans;

impl PlanSource for FreshPlans {
    fn plan(
        &self,
        _fingerprint: u64,
        cfg: &SimConfig,
        build: &mut dyn FnMut() -> Result<Graph>,
    ) -> Result<Arc<SimPlan>> {
        Ok(Arc::new(SimPlan::new(build()?, cfg.clone())?))
    }
}

/// The attention plan's builder fingerprint: everything
/// [`attention_graph_with_ports`] consumes for a serving run — the
/// model, the parallelization strategy, and the envelope KV trace the
/// dispatch queues are provisioned for.
pub fn attn_plan_fingerprint(model: &ModelConfig, variant: &E2eVariant, envelope: &KvTrace) -> u64 {
    let mut fp = Fingerprint::new("serve.attn");
    fp.push_debug(model)
        .push_debug(&variant.attention)
        .push_debug(envelope);
    fp.finish()
}

/// The MoE plan's builder fingerprint: everything
/// [`moe_graph_with_ports`] consumes for a serving run — the model, the
/// tiling schedule (with optional time-share regions), and the
/// build-time routing trace that sizes the batch.
pub fn moe_plan_fingerprint(
    model: &ModelConfig,
    variant: &E2eVariant,
    build_routing: &RoutingTrace,
) -> u64 {
    let mut fp = Fingerprint::new("serve.moe");
    fp.push_debug(model)
        .push_debug(&variant.tiling)
        .push_debug(&variant.moe_regions)
        .push_debug(build_routing);
    fp.finish()
}

/// A serving run packaged as one schedulable work item: everything
/// [`run_serve_with`] needs, owned and `Send`, so a sweep service can
/// move it to a worker thread and check its phase plans out of a shared
/// cache.
#[derive(Debug, Clone)]
pub struct ServeJob {
    /// Display label (e.g. the sweep cell name).
    pub label: String,
    /// Model configuration.
    pub model: ModelConfig,
    /// Schedule variant (tiling, time-share regions, attention strategy).
    pub variant: E2eVariant,
    /// The arrival trace to serve.
    pub trace: RequestTrace,
    /// Driver configuration.
    pub cfg: ServeCfg,
}

impl ServeJob {
    /// Runs the job with fresh plans (the serial path).
    pub fn run(&self) -> Result<ServeReport> {
        run_serve(&self.model, &self.variant, &self.trace, &self.cfg)
    }

    /// Runs the job, checking phase plans out of `plans`.
    pub fn run_with(&self, plans: &dyn PlanSource) -> Result<ServeReport> {
        run_serve_with(&self.model, &self.variant, &self.trace, &self.cfg, plans)
    }

    /// Runs the job, checking phase plans out of `plans` and phase
    /// *reports* out of `reports` — the fully memoized path the sweep
    /// service drives, sharing one [`ReportCache`] across jobs.
    pub fn run_memo(&self, plans: &dyn PlanSource, reports: &ReportCache) -> Result<ServeReport> {
        run_serve_memo(
            &self.model,
            &self.variant,
            &self.trace,
            &self.cfg,
            plans,
            reports,
        )
    }
}

/// KV context stub bound into vacant slots (one tile; the dispatch
/// selector's batch width is fixed at freeze time).
const VACANT_CTX: u32 = 1;

/// A live request's slot state.
struct Slot {
    id: u32,
    arrival: u64,
    admitted: u64,
    prompt: u32,
    output: u32,
    /// Prompt tokens prefilled so far.
    processed: u32,
    /// Output tokens generated so far.
    generated: u32,
    first_token: Option<u64>,
}

/// Runs the serving loop over an arrival trace.
///
/// # Errors
///
/// Rejects invalid configurations (zero slots, a token budget below the
/// slot count, a zero prefill chunk, an empty trace) and propagates
/// graph-construction and simulation errors.
pub fn run_serve(
    model: &ModelConfig,
    variant: &E2eVariant,
    trace: &RequestTrace,
    cfg: &ServeCfg,
) -> Result<ServeReport> {
    run_serve_with(model, variant, trace, cfg, &FreshPlans)
}

/// [`run_serve`] with the phase plans checked out of `plans` instead of
/// frozen inline. The report is bit-identical to [`run_serve`] for any
/// correct [`PlanSource`]: a plan is a pure function of `(builder
/// fingerprint, SimConfig minus threads)`, so where it came from cannot
/// show up in the results
/// (`crates/bench/tests/service_conformance.rs` holds the two together).
/// Memoizes QKV and MoE reports in a run-private [`ReportCache`].
///
/// # Errors
///
/// As [`run_serve`], plus any error from `plans`.
pub fn run_serve_with(
    model: &ModelConfig,
    variant: &E2eVariant,
    trace: &RequestTrace,
    cfg: &ServeCfg,
    plans: &dyn PlanSource,
) -> Result<ServeReport> {
    run_serve_memo(model, variant, trace, cfg, plans, &ReportCache::new())
}

/// [`run_serve_with`] with the phase *reports* also checked out of a
/// caller-owned [`ReportCache`] — the entry point sweep services drive,
/// sharing one cache across jobs so a cell's steady-state QKV and MoE
/// iterations replay reports instead of running the engine (see the
/// module docs). The report minus the host-side cache telemetry is
/// bit-identical to [`run_serve`] for any cache mode, including
/// [`ReportCache::disabled`] and the differential
/// [`ReportCache::checked`].
///
/// # Errors
///
/// As [`run_serve_with`], plus a propagated failure from any coalesced
/// cache entry.
pub fn run_serve_memo(
    model: &ModelConfig,
    variant: &E2eVariant,
    trace: &RequestTrace,
    cfg: &ServeCfg,
    plans: &dyn PlanSource,
    reports: &ReportCache,
) -> Result<ServeReport> {
    if cfg.slots == 0 {
        return Err(StepError::Config("serving needs at least one slot".into()));
    }
    if cfg.token_budget < cfg.slots {
        return Err(StepError::Config(format!(
            "token budget {} below slot count {} — a full decode batch would not fit",
            cfg.token_budget, cfg.slots
        )));
    }
    if cfg.prefill_chunk == Some(0) {
        return Err(StepError::Config("prefill chunk must be positive".into()));
    }
    if trace.requests.is_empty() {
        return Err(StepError::Config("serving trace has no requests".into()));
    }

    // One plan per phase against the admitted-set envelope. Graphs (and
    // their binding ports) are built eagerly — they are cheap relative
    // to plan freeze (partition + executor compilation), which is what
    // the `PlanSource` elides on a cache hit.
    let attn_cfg = AttentionCfg::new(model.clone(), variant.attention);
    let envelope = envelope_kv(trace, cfg);
    let (attn_graph, attn_ports) = attention_graph_with_ports(&attn_cfg, &envelope)?;
    let sim_cfg = SimConfig {
        threads: cfg.threads,
        ..SimConfig::default()
    };
    let attn_plan = {
        let mut graph = Some(attn_graph);
        plans.plan(
            attn_plan_fingerprint(model, variant, &envelope),
            &sim_cfg,
            &mut || Ok(graph.take().expect("build closure invoked at most once")),
        )?
    };
    let mut moe_cfg = MoeCfg::new(model.clone(), variant.tiling);
    if let Some(r) = variant.moe_regions {
        moe_cfg = moe_cfg.with_regions(r);
    }
    let moe_build = moe_build_trace(model, cfg);
    let (moe_graph, moe_ports) = moe_graph_with_ports(&moe_cfg, &moe_build)?;
    let moe_sim_cfg = SimConfig {
        threads: cfg.threads,
        ..moe_sim_config()
    };
    let moe_plan = {
        let mut graph = Some(moe_graph);
        plans.plan(
            moe_plan_fingerprint(model, variant, &moe_build),
            &moe_sim_cfg,
            &mut || Ok(graph.take().expect("build closure invoked at most once")),
        )?
    };
    // The report-cache keys' plan halves: *content* keys (builder
    // fingerprint × config fingerprint, threads excluded), so replays
    // hit across plan rebuilds, shared plan caches, and thread counts.
    let moe_report_key = plan_content_key(
        moe_plan_fingerprint(model, variant, &moe_build),
        &moe_sim_cfg,
    );
    // `hbm_bytes_per_cycle` sums QKV + attention + MoE traffic, so the
    // utilization denominator must be a peak the three phases *share* —
    // taking any single phase's peak silently misreports the moment a
    // phase config diverges.
    let offchip_peak_bw = sim_cfg.hbm.bytes_per_cycle;
    if moe_sim_config().hbm.bytes_per_cycle != offchip_peak_bw {
        return Err(StepError::Config(format!(
            "phase HBM peaks diverge: qkv/attention {} B/cycle vs moe {} B/cycle — \
             hbm_utilization is only meaningful against one shared peak",
            offchip_peak_bw,
            moe_sim_config().hbm.bytes_per_cycle,
        )));
    }
    let (mut attn_pool, mut moe_pool) = (RunPool::new(), RunPool::new());
    let run_phase = |plan: &SimPlan,
                     binding: &step_sim::RunBinding,
                     pool: &mut RunPool,
                     warmed: bool|
     -> Result<SimReport> {
        let report = if cfg.pooled {
            plan.pooled_run_bound(binding, pool)?
        } else {
            plan.run_bound(binding)?
        };
        if cfg.pooled {
            // Serving's steady state is the same contract as the decode
            // loop's: iterations after warmup reset parked state in
            // place — no plan rebuilds, `run_allocs == 0`.
            debug_assert_steady(&report, warmed);
        }
        Ok(report)
    };

    let chunk_cap = cfg.prefill_chunk.unwrap_or(u32::MAX);
    let mut slots: Vec<Option<Slot>> = (0..cfg.slots).map(|_| None).collect();
    let mut arrivals = trace.requests.iter().copied().peekable();
    let mut waiting: std::collections::VecDeque<step_traces::Request> =
        std::collections::VecDeque::new();
    let mut clock: u64 = 0;
    let mut iterations = Vec::new();
    let mut outcomes: Vec<ServeOutcome> = Vec::new();
    let (mut admitted_total, mut evicted_total, mut shed_total) = (0u32, 0u32, 0u32);
    let (mut busy_cycles, mut offchip_traffic) = (0u64, 0u64);
    let (mut total_fires, mut chan_runs) = (0u64, 0u64);
    let mut truncated = false;
    // Execution telemetry: this run's cache resolutions and the fires
    // the engine actually executed (vs the logical `total_fires`).
    let mut cache_stats = ReportCacheStats::default();
    let mut engine_fires = 0u64;
    // The MoE pool warms on the first *actual* engine run, not the first
    // iteration — under a warm shared cache the early iterations replay
    // and never materialize pooled state.
    let mut moe_warm = false;

    // Counts processing iterations only — idle clock-jumps don't run
    // phases, consume routing seeds, or warm the pools.
    let mut iter: u32 = 0;
    loop {
        // Pull arrivals up to the clock, then admit into free slots in
        // arrival order (lowest free slot index first — deterministic).
        while arrivals.peek().is_some_and(|r| r.arrival <= clock) {
            waiting.push_back(arrivals.next().expect("peeked"));
        }
        // SLO shedding: a waiting request whose queueing delay already
        // exceeds the TTFT objective cannot meet it no matter what the
        // batch does — drop it at the admission boundary instead of
        // spending slots and tokens on a guaranteed SLO violation. The
        // queue is in arrival order, so delays are maximal at the front.
        if let Some(slo) = cfg.ttft_slo {
            while waiting.front().is_some_and(|r| clock - r.arrival > slo) {
                waiting.pop_front();
                shed_total += 1;
            }
        }
        let mut admitted_now = 0u32;
        for slot in slots.iter_mut() {
            if slot.is_none()
                && let Some(r) = waiting.pop_front()
            {
                *slot = Some(Slot {
                    id: r.id,
                    arrival: r.arrival,
                    admitted: clock,
                    prompt: r.prompt,
                    output: r.output,
                    processed: 0,
                    generated: 0,
                    first_token: None,
                });
                admitted_now += 1;
            }
        }
        admitted_total += admitted_now;

        let live = slots.iter().flatten().count() as u32;
        if live == 0 {
            match arrivals.peek() {
                // Idle: jump the clock to the next arrival.
                Some(r) => {
                    clock = r.arrival;
                    continue;
                }
                None => break, // drained
            }
        }
        if iter >= cfg.max_iterations {
            truncated = true;
            break;
        }

        // Token allocation: decode tokens first (one per decoding
        // request — always fits, token_budget >= slots), then prefill
        // chunks in slot order from the remaining budget.
        let mut allocs = vec![0u32; cfg.slots];
        let mut budget = cfg.token_budget;
        for (i, slot) in slots.iter().enumerate() {
            if let Some(s) = slot
                && s.processed == s.prompt
            {
                allocs[i] = 1;
                budget -= 1;
            }
        }
        for (i, slot) in slots.iter().enumerate() {
            if let Some(s) = slot
                && s.processed < s.prompt
            {
                let a = (s.prompt - s.processed).min(chunk_cap).min(budget as u32);
                allocs[i] = a;
                budget -= a as usize;
            }
        }

        // Compose the iteration's batch: per-slot KV contexts (prefill
        // attends over its prefix plus the chunk, decode over its full
        // cache) and the routed token count.
        let slot_ctx: Vec<u32> = slots
            .iter()
            .zip(&allocs)
            .map(|(slot, &a)| match slot {
                Some(s) if s.processed == s.prompt => s.prompt + s.generated,
                // A prefill slot starved of tokens by budget exhaustion
                // does no work this iteration: bind the vacant stub.
                // Binding its `processed` prefix would charge a full
                // attention scan for a slot that processes nothing.
                Some(_) if a == 0 => VACANT_CTX,
                Some(s) => s.processed + a,
                None => VACANT_CTX,
            })
            .collect();
        let decode_tokens: u32 = slots
            .iter()
            .flatten()
            .filter(|s| s.processed == s.prompt)
            .count() as u32;
        let tokens: u32 = allocs.iter().sum();
        debug_assert!(tokens >= 1, "live iteration must process tokens");

        // Run the three phases on the frozen plans. Attention always
        // simulates: under a churning batch the slot-context vector is
        // effectively unique per iteration, so caching it would only pay
        // fingerprint cost for misses. QKV and MoE go through the report
        // cache — their steady-state signatures repeat.
        let kv = KvTrace {
            lengths: slot_ctx.clone(),
        };
        let attn_bind = bind_attention(&attn_cfg, &attn_ports, &kv);
        let attn = run_phase(&attn_plan, &attn_bind, &mut attn_pool, iter > 0)?;
        engine_fires += attn.total_fires();
        let mut routing = iteration_routing(model, cfg, iter, tokens as usize);
        if cfg.moe_canonical {
            // Canonical rebinding: order-permuted routings collapse to
            // one exact cache key (see `ServeCfg::moe_canonical`). The
            // cache's canonical *replay* layer is deliberately not used
            // here — order permutation was measured to drift cycles, so
            // only re-simulation of the canonical order is exact.
            routing = canonical_routing(&routing);
        }
        let moe_bind = bind_moe(&moe_ports, model.hidden, &routing);
        let moe = {
            let warmed = moe_warm;
            let replay = reports.replay_or_run(moe_report_key, &moe_bind, None, &mut || {
                run_phase(&moe_plan, &moe_bind, &mut moe_pool, warmed)
            })?;
            cache_stats.absorb(replay.resolution);
            if replay.resolution == Resolution::Simulated {
                engine_fires += replay.report.total_fires();
                moe_warm = true;
            }
            replay.report
        };
        let qkv = {
            // The QKV graph has no rebindable sources: the plan content
            // key (model dims × token count × config) is the whole
            // identity, bound under the empty binding.
            let key = plan_content_key(qkv_fingerprint(model, tokens as usize), &sim_cfg);
            let replay = reports.replay_or_run(key, &RunBinding::new(), None, &mut || {
                SimPlan::new(qkv_graph(model, tokens as usize)?, sim_cfg.clone())?.run()
            })?;
            cache_stats.absorb(replay.resolution);
            if replay.resolution == Resolution::Simulated {
                engine_fires += replay.report.total_fires();
            }
            replay.report
        };

        let layer_cycles = qkv.cycles + attn.cycles + moe.cycles;
        let iter_cycles = layer_cycles * model.layers;
        let iter_traffic = qkv.offchip_traffic + attn.offchip_traffic + moe.offchip_traffic;
        let fires = qkv.total_fires() + attn.total_fires() + moe.total_fires();
        let runs = qkv.chan_runs + attn.chan_runs + moe.chan_runs;
        let start = clock;
        clock += iter_cycles;
        busy_cycles += iter_cycles;
        offchip_traffic += iter_traffic * model.layers;
        total_fires += fires;
        chan_runs += runs;

        // Post-iteration request state: prefill progress, token
        // emission, completion, and eviction.
        let mut completed_now = 0u32;
        for (slot, &a) in slots.iter_mut().zip(&allocs) {
            let Some(s) = slot.as_mut() else { continue };
            if s.processed == s.prompt {
                s.generated += 1;
            } else {
                s.processed += a;
                if s.processed == s.prompt {
                    // Prefill done: this iteration produced the first
                    // output token.
                    s.first_token = Some(clock);
                    s.generated = 1;
                }
            }
            if s.generated == s.output {
                outcomes.push(ServeOutcome {
                    id: s.id,
                    arrival: s.arrival,
                    admitted: s.admitted,
                    first_token: s.first_token.expect("completed after first token"),
                    finished: clock,
                    prompt: s.prompt,
                    output: s.output,
                });
                completed_now += 1;
                evicted_total += 1;
                *slot = None;
            }
        }

        iterations.push(ServeIteration {
            iter,
            start,
            live,
            admitted: admitted_now,
            completed: completed_now,
            tokens,
            decode_tokens,
            slot_ctx,
            qkv_cycles: qkv.cycles,
            attn_cycles: attn.cycles,
            moe_cycles: moe.cycles,
            layer_cycles,
            fires,
            chan_runs: runs,
            offchip_traffic: iter_traffic,
        });
        iter += 1;
    }

    outcomes.sort_by_key(|o| o.id);
    let ttft = Percentiles::of(outcomes.iter().map(|o| o.ttft() as f64).collect());
    let tpot = Percentiles::of(
        outcomes
            .iter()
            .filter(|o| o.output > 1)
            .map(ServeOutcome::tpot)
            .collect(),
    );
    let goodput = if clock == 0 {
        0.0
    } else {
        outcomes.len() as f64 * 1e6 / clock as f64
    };
    let hbm_bytes_per_cycle = if busy_cycles == 0 {
        0.0
    } else {
        offchip_traffic as f64 / busy_cycles as f64
    };
    let hbm_utilization = if offchip_peak_bw == 0 {
        0.0
    } else {
        hbm_bytes_per_cycle / offchip_peak_bw as f64
    };
    Ok(ServeReport {
        iterations,
        outcomes,
        total_cycles: clock,
        busy_cycles,
        offchip_traffic,
        admitted_total,
        evicted_total,
        shed_total,
        total_fires,
        chan_runs,
        engine_fires,
        report_cache: cache_stats,
        ttft,
        tpot,
        goodput_per_mcycle: goodput,
        offered_per_mcycle: trace.offered_per_mcycle(),
        hbm_bytes_per_cycle,
        hbm_utilization,
        truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use step_traces::{ArrivalConfig, ArrivalPattern, LenDist, Request, arrival_trace};

    fn tiny() -> ModelConfig {
        ModelConfig {
            name: "tiny",
            hidden: 128,
            moe_intermediate: 256,
            experts: 4,
            top_k: 2,
            q_heads: 4,
            kv_heads: 2,
            head_dim: 32,
            layers: 2,
        }
    }

    fn tiny_trace(requests: usize, mean_interarrival: f64, seed: u64) -> RequestTrace {
        arrival_trace(&ArrivalConfig {
            requests,
            mean_interarrival,
            pattern: ArrivalPattern::Poisson,
            prompt: LenDist::new(48.0, 0.5, 8, 128),
            output: LenDist::new(3.0, 0.5, 1, 6),
            seed,
        })
    }

    fn cfg() -> ServeCfg {
        ServeCfg {
            slots: 4,
            token_budget: 16,
            prefill_chunk: Some(16),
            seed: 11,
            ..ServeCfg::default()
        }
    }

    #[test]
    fn drains_every_request_with_sane_latencies() {
        let trace = tiny_trace(10, 50_000.0, 1);
        let v = E2eVariant::static_schedule("s", 4);
        let r = run_serve(&tiny(), &v, &trace, &cfg()).unwrap();
        assert!(!r.truncated);
        assert_eq!(r.outcomes.len(), 10);
        assert_eq!(r.admitted_total, 10);
        assert_eq!(r.evicted_total, 10);
        for (o, req) in r.outcomes.iter().zip(&trace.requests) {
            assert_eq!(o.id, req.id);
            assert!(o.arrival <= o.admitted);
            assert!(o.admitted < o.first_token);
            assert!(o.first_token <= o.finished);
            assert_eq!((o.prompt, o.output), (req.prompt, req.output));
        }
        let ttft = r.ttft.expect("completed requests have TTFT percentiles");
        assert!(ttft.p50 > 0.0 && ttft.p50 <= ttft.p95);
        assert!(ttft.p95 <= ttft.p99);
        assert!(r.goodput_per_mcycle > 0.0);
        assert!(r.hbm_utilization > 0.0 && r.hbm_utilization <= 1.0);
    }

    #[test]
    fn admission_never_exceeds_slots_and_budget_is_honored() {
        let trace = tiny_trace(16, 5_000.0, 2); // heavy load: queueing
        let v = E2eVariant::static_schedule("s", 4);
        let c = cfg();
        let r = run_serve(&tiny(), &v, &trace, &c).unwrap();
        for it in &r.iterations {
            assert!(
                it.live <= c.slots as u32,
                "iter {}: live {}",
                it.iter,
                it.live
            );
            assert!(
                it.tokens as usize <= c.token_budget,
                "iter {}: tokens {}",
                it.iter,
                it.tokens
            );
            assert!(it.decode_tokens <= it.live);
            assert_eq!(it.slot_ctx.len(), c.slots);
        }
        // No starvation: everything admitted eventually completes under
        // the drain tail.
        assert_eq!(r.admitted_total, 16);
        assert_eq!(r.evicted_total, 16);
        assert_eq!(r.outcomes.len(), 16);
    }

    #[test]
    fn ttft_slo_sheds_hopeless_waiters_deterministically() {
        let trace = tiny_trace(16, 5_000.0, 2); // heavy load: queueing
        let v = E2eVariant::static_schedule("s", 4);
        let baseline = run_serve(&tiny(), &v, &trace, &cfg()).unwrap();
        assert_eq!(baseline.shed_total, 0, "no SLO, nothing shed");
        let c = ServeCfg {
            ttft_slo: Some(0),
            ..cfg()
        };
        let r = run_serve(&tiny(), &v, &trace, &c).unwrap();
        assert!(r.shed_total > 0, "tight SLO under heavy load must shed");
        assert_eq!(r.admitted_total + r.shed_total, 16);
        assert_eq!(r.outcomes.len(), r.admitted_total as usize);
        // Shedding happens before admission at the same clock, so every
        // admitted request met the (zero) queueing bound.
        for o in &r.outcomes {
            assert_eq!(o.admitted, o.arrival, "queue delay within SLO");
        }
        let rerun = run_serve(&tiny(), &v, &trace, &c).unwrap();
        assert_eq!(r, rerun);
    }

    #[test]
    fn same_seed_reruns_are_bit_identical() {
        let trace = tiny_trace(8, 20_000.0, 3);
        let v = E2eVariant::static_schedule("s", 4);
        let a = run_serve(&tiny(), &v, &trace, &cfg()).unwrap();
        let b = run_serve(&tiny(), &v, &trace, &cfg()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn chunked_prefill_bounds_per_iteration_prefill() {
        let trace = tiny_trace(6, 10_000.0, 4);
        let v = E2eVariant::static_schedule("s", 4);
        let chunked = run_serve(
            &tiny(),
            &v,
            &trace,
            &ServeCfg {
                prefill_chunk: Some(4),
                ..cfg()
            },
        )
        .unwrap();
        let whole = run_serve(
            &tiny(),
            &v,
            &trace,
            &ServeCfg {
                prefill_chunk: None,
                ..cfg()
            },
        )
        .unwrap();
        // Chunking spreads prefill over more iterations.
        assert!(chunked.iterations.len() >= whole.iterations.len());
        assert_eq!(chunked.outcomes.len(), whole.outcomes.len());
        // Both schedules respect the budget; the chunked one also caps
        // per-request prefill progress per iteration at the chunk.
        let max_prefill = chunked
            .iterations
            .iter()
            .map(|it| it.tokens - it.decode_tokens)
            .max()
            .unwrap_or(0);
        assert!(max_prefill <= 4 * 4, "prefill tokens {max_prefill}");
    }

    #[test]
    fn starved_prefill_slot_binds_the_vacant_stub() {
        let requests = vec![
            Request {
                id: 0,
                arrival: 0,
                prompt: 1,
                output: 10,
            },
            Request {
                id: 1,
                arrival: 0,
                prompt: 1,
                output: 2,
            },
            Request {
                id: 2,
                arrival: 0,
                prompt: 8,
                output: 1,
            },
            Request {
                id: 3,
                arrival: 1,
                prompt: 4,
                output: 1,
            },
        ];
        let trace = RequestTrace { requests };
        let c = ServeCfg {
            slots: 3,
            token_budget: 3,
            prefill_chunk: Some(2),
            ..cfg()
        };
        let v = E2eVariant::static_schedule("s", 4);
        let r = run_serve(&tiny(), &v, &trace, &c).unwrap();
        // Iteration 2: slot 0 decodes (1 token), slot 1 admits request 3
        // whose chunk takes the whole remaining budget, and slot 2's live
        // prefill (2 of 8 prompt tokens in) gets zero tokens — it must
        // bind the vacant stub, not its 2-token prefix.
        let it = &r.iterations[2];
        assert_eq!((it.live, it.tokens), (3, 3));
        assert_eq!(
            it.slot_ctx[2], VACANT_CTX,
            "starved prefill slot charged attention work"
        );
        assert_eq!(r.outcomes.len(), 4, "starved request must still drain");
    }

    #[test]
    fn phase_sim_configs_share_one_offchip_peak() {
        // `hbm_utilization` divides summed three-phase traffic by one
        // peak, so the phase sim configs must agree on it; the driver
        // rejects divergence at run time and this pins it at test time.
        assert_eq!(
            moe_sim_config().hbm.bytes_per_cycle,
            SimConfig::default().hbm.bytes_per_cycle,
            "serving phase configs diverged on HBM peak bandwidth"
        );
        let trace = tiny_trace(6, 20_000.0, 8);
        let v = E2eVariant::static_schedule("s", 4);
        let r = run_serve(&tiny(), &v, &trace, &cfg()).unwrap();
        let peak = SimConfig::default().hbm.bytes_per_cycle as f64;
        assert!(
            (r.hbm_utilization - r.hbm_bytes_per_cycle / peak).abs() < 1e-12,
            "utilization not computed against the shared peak"
        );
    }

    #[test]
    fn percentiles_distinguish_empty_population_from_zero() {
        assert_eq!(Percentiles::of(vec![]), None);
        let one = Percentiles::of(vec![4.0]).unwrap();
        assert_eq!((one.p50, one.p95, one.p99), (4.0, 4.0, 4.0));
        // An all-single-token-output trace has no TPOT population at all
        // — previously indistinguishable from a measured 0.0.
        let trace = arrival_trace(&ArrivalConfig {
            requests: 5,
            mean_interarrival: 30_000.0,
            pattern: ArrivalPattern::Poisson,
            prompt: LenDist::new(24.0, 0.4, 8, 64),
            output: LenDist::new(1.0, 0.0, 1, 1),
            seed: 12,
        });
        let v = E2eVariant::static_schedule("s", 4);
        let r = run_serve(&tiny(), &v, &trace, &cfg()).unwrap();
        assert_eq!(r.outcomes.len(), 5);
        assert!(r.ttft.is_some());
        assert_eq!(r.tpot, None, "no multi-token outputs → no population");
    }

    #[test]
    fn rejects_invalid_configs() {
        let trace = tiny_trace(2, 1_000.0, 5);
        let v = E2eVariant::static_schedule("s", 4);
        let m = tiny();
        assert!(run_serve(&m, &v, &trace, &ServeCfg { slots: 0, ..cfg() }).is_err());
        assert!(
            run_serve(
                &m,
                &v,
                &trace,
                &ServeCfg {
                    token_budget: 2,
                    slots: 4,
                    ..cfg()
                }
            )
            .is_err()
        );
        assert!(
            run_serve(
                &m,
                &v,
                &trace,
                &ServeCfg {
                    prefill_chunk: Some(0),
                    ..cfg()
                }
            )
            .is_err()
        );
        assert!(run_serve(&m, &v, &RequestTrace { requests: vec![] }, &cfg()).is_err());
    }

    #[test]
    fn truncation_is_reported() {
        let trace = tiny_trace(8, 5_000.0, 6);
        let v = E2eVariant::static_schedule("s", 4);
        let r = run_serve(
            &tiny(),
            &v,
            &trace,
            &ServeCfg {
                max_iterations: 2,
                ..cfg()
            },
        )
        .unwrap();
        assert!(r.truncated);
        assert!(r.outcomes.len() < 8);
    }
}
