//! End-to-end decoder models (§5.5, Fig 17).
//!
//! Each decoder layer consists of QKV generation (dense GEMM), attention,
//! and the MoE block; the model stacks `layers` such layers executed
//! repeatedly with layer-specific weights, so end-to-end latency is the
//! per-layer latency times the layer count. We simulate the three phases
//! as separate STeP graphs and sum their latencies: decode phases are
//! serialized by data dependence, which makes the sum a faithful (slightly
//! conservative) composition that affects every variant identically —
//! the *relative* comparisons of Fig 17 are what the figure reports.

use crate::attention::{AttentionCfg, ParallelStrategy, attention_graph};
use crate::config::ModelConfig;
use crate::moe::{MoeCfg, Tiling, moe_graph};
use crate::swiglu::{GemmCfg, build_gemm};
use step_core::Result;
use step_core::graph::GraphBuilder;
use step_sim::{SimConfig, SimReport, Simulation};
use step_traces::{KvTraceConfig, RoutingConfig, Variability, expert_routing, kv_lengths};

/// One end-to-end schedule variant (a column of Fig 17).
#[derive(Debug, Clone)]
pub struct E2eVariant {
    /// Display name ("Static (Mem-matched)", ...).
    pub name: String,
    /// MoE batch tiling.
    pub tiling: Tiling,
    /// MoE time-multiplexing regions (None = fully spatial).
    pub moe_regions: Option<u32>,
    /// Attention dispatch strategy.
    pub attention: ParallelStrategy,
}

impl E2eVariant {
    /// A static baseline with the given MoE tile size.
    pub fn static_schedule(name: &str, tile: u64) -> E2eVariant {
        E2eVariant {
            name: name.to_string(),
            tiling: Tiling::Static { tile },
            moe_regions: None,
            attention: ParallelStrategy::StaticInterleaved,
        }
    }

    /// The fully dynamic schedule (dynamic tiling + dynamic
    /// parallelization), optionally with configuration time-multiplexing.
    pub fn dynamic_schedule(moe_regions: Option<u32>) -> E2eVariant {
        E2eVariant {
            name: "Dynamic".to_string(),
            tiling: Tiling::Dynamic,
            moe_regions,
            attention: ParallelStrategy::Dynamic,
        }
    }
}

/// Per-phase and whole-model results.
#[derive(Debug, Clone)]
pub struct E2eReport {
    /// QKV + output projection cycles.
    pub qkv_cycles: u64,
    /// Attention cycles.
    pub attn_cycles: u64,
    /// MoE cycles.
    pub moe_cycles: u64,
    /// One decoder layer (sum of phases).
    pub layer_cycles: u64,
    /// Full model (layer x layer count).
    pub total_cycles: u64,
    /// Measured on-chip memory across the three phase graphs, bytes.
    pub onchip_bytes: u64,
    /// Allocated compute across the three phase graphs, FLOPs/cycle.
    pub allocated_compute: u64,
    /// Whole-model off-chip traffic, bytes.
    pub offchip_traffic: u64,
}

fn run_graph(graph: step_core::Graph) -> Result<SimReport> {
    Simulation::new(graph, SimConfig::default())?.run()
}

/// MoE graphs run multi-million-cycle simulations; a coarser execution
/// window is ordering-equivalent there and much faster.
fn run_moe_graph(graph: step_core::Graph) -> Result<SimReport> {
    let cfg = SimConfig {
        horizon_step: 512,
        ..SimConfig::default()
    };
    Simulation::new(graph, cfg)?.run()
}

/// Runs one end-to-end variant.
///
/// # Errors
///
/// Propagates graph-construction and simulation errors.
pub fn run_e2e(
    model: &ModelConfig,
    batch: usize,
    variant: &E2eVariant,
    seed: u64,
) -> Result<E2eReport> {
    // QKV generation + output projection as one fused dense GEMM.
    let n = (model.q_heads + 2 * model.kv_heads) * model.head_dim + model.hidden;
    let tile_n = [256u64, 128, 64, 32]
        .into_iter()
        .find(|t| n.is_multiple_of(*t))
        .unwrap_or(n);
    let mut g = GraphBuilder::new();
    build_gemm(
        &mut g,
        &GemmCfg {
            batch: batch as u64,
            hidden: model.hidden,
            n,
            tile_batch: 64.min(batch as u64),
            tile_n,
            x_addr: 0x100_0000,
            w_addr: 0x1000_0000,
            out_addr: 0x8000_0000,
            compute_bw: 8192,
        },
    )?;
    let qkv = run_graph(g.finish())?;

    // Attention over a median-variability KV trace (§5.5).
    let kv = kv_lengths(&KvTraceConfig {
        batch,
        variability: Variability::Medium,
        median_len: 1024.0,
        seed,
        ..KvTraceConfig::default()
    });
    let attn_cfg = AttentionCfg::new(model.clone(), variant.attention);
    let attn = run_graph(attention_graph(&attn_cfg, &kv)?)?;

    // MoE with the variant's tiling / multiplexing.
    let routing = expert_routing(&RoutingConfig {
        experts: model.experts,
        top_k: model.top_k,
        batch,
        skew: 0.8,
        seed: seed ^ 0x5eed,
    });
    let mut moe_cfg = MoeCfg::new(model.clone(), variant.tiling);
    if let Some(r) = variant.moe_regions {
        moe_cfg = moe_cfg.with_regions(r);
    }
    let moe = run_moe_graph(moe_graph(&moe_cfg, &routing)?)?;

    let layer_cycles = qkv.cycles + attn.cycles + moe.cycles;
    Ok(E2eReport {
        qkv_cycles: qkv.cycles,
        attn_cycles: attn.cycles,
        moe_cycles: moe.cycles,
        layer_cycles,
        total_cycles: layer_cycles * model.layers,
        onchip_bytes: qkv.onchip_memory + attn.onchip_memory + moe.onchip_memory,
        allocated_compute: qkv.allocated_compute + attn.allocated_compute + moe.allocated_compute,
        offchip_traffic: (qkv.offchip_traffic + attn.offchip_traffic + moe.offchip_traffic)
            * model.layers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ModelConfig {
        ModelConfig {
            name: "tiny",
            hidden: 128,
            moe_intermediate: 256,
            experts: 4,
            top_k: 2,
            q_heads: 4,
            kv_heads: 2,
            head_dim: 32,
            layers: 2,
        }
    }

    #[test]
    fn e2e_runs_and_scales_with_layers() {
        let r = run_e2e(&tiny(), 8, &E2eVariant::static_schedule("s", 4), 1).unwrap();
        assert_eq!(r.total_cycles, r.layer_cycles * 2);
        assert_eq!(r.layer_cycles, r.qkv_cycles + r.attn_cycles + r.moe_cycles);
        assert!(r.onchip_bytes > 0);
        assert!(r.allocated_compute > 0);
    }

    #[test]
    fn dynamic_variant_runs_with_regions() {
        let r = run_e2e(&tiny(), 8, &E2eVariant::dynamic_schedule(Some(2)), 1).unwrap();
        assert!(r.moe_cycles > 0);
        let spatial = run_e2e(&tiny(), 8, &E2eVariant::dynamic_schedule(None), 1).unwrap();
        assert!(r.allocated_compute < spatial.allocated_compute);
    }
}
