//! End-to-end decoder models (§5.5, Fig 17).
//!
//! Each decoder layer consists of QKV generation (dense GEMM), attention,
//! and the MoE block; the model stacks `layers` such layers executed
//! repeatedly with layer-specific weights, so end-to-end latency is the
//! per-layer latency times the layer count. We simulate the three phases
//! as separate STeP graphs and sum their latencies: decode phases are
//! serialized by data dependence, which makes the sum a faithful (slightly
//! conservative) composition that affects every variant identically —
//! the *relative* comparisons of Fig 17 are what the figure reports.

use crate::attention::{
    AttentionCfg, ParallelStrategy, attention_graph, attention_graph_with_ports,
};
use crate::config::ModelConfig;
use crate::moe::{MoeCfg, Tiling, moe_graph, moe_graph_with_ports};
use crate::phases::{bind_attention, bind_moe, debug_assert_steady, moe_sim_config, qkv_graph};
use step_core::Result;
use step_sim::{RunPool, SimConfig, SimPlan, SimReport};
use step_traces::{KvTrace, KvTraceConfig, RoutingConfig, Variability, expert_routing, kv_lengths};

/// One end-to-end schedule variant (a column of Fig 17).
#[derive(Debug, Clone)]
pub struct E2eVariant {
    /// Display name ("Static (Mem-matched)", ...).
    pub name: String,
    /// MoE batch tiling.
    pub tiling: Tiling,
    /// MoE time-multiplexing regions (None = fully spatial).
    pub moe_regions: Option<u32>,
    /// Attention dispatch strategy.
    pub attention: ParallelStrategy,
}

impl E2eVariant {
    /// A static baseline with the given MoE tile size.
    pub fn static_schedule(name: &str, tile: u64) -> E2eVariant {
        E2eVariant {
            name: name.to_string(),
            tiling: Tiling::Static { tile },
            moe_regions: None,
            attention: ParallelStrategy::StaticInterleaved,
        }
    }

    /// The fully dynamic schedule (dynamic tiling + dynamic
    /// parallelization), optionally with configuration time-multiplexing.
    pub fn dynamic_schedule(moe_regions: Option<u32>) -> E2eVariant {
        E2eVariant {
            name: "Dynamic".to_string(),
            tiling: Tiling::Dynamic,
            moe_regions,
            attention: ParallelStrategy::Dynamic,
        }
    }
}

/// Per-phase and whole-model results.
#[derive(Debug, Clone)]
pub struct E2eReport {
    /// QKV + output projection cycles.
    pub qkv_cycles: u64,
    /// Attention cycles.
    pub attn_cycles: u64,
    /// MoE cycles.
    pub moe_cycles: u64,
    /// One decoder layer (sum of phases).
    pub layer_cycles: u64,
    /// Full model (layer x layer count).
    pub total_cycles: u64,
    /// Measured on-chip memory across the three phase graphs, bytes.
    pub onchip_bytes: u64,
    /// Allocated compute across the three phase graphs, FLOPs/cycle.
    pub allocated_compute: u64,
    /// Whole-model off-chip traffic, bytes.
    pub offchip_traffic: u64,
}

fn run_graph(graph: step_core::Graph) -> Result<SimReport> {
    SimPlan::new(graph, SimConfig::default())?.run()
}

fn run_moe_graph(graph: step_core::Graph) -> Result<SimReport> {
    SimPlan::new(graph, moe_sim_config())?.run()
}

/// Runs one end-to-end variant.
///
/// # Errors
///
/// Propagates graph-construction and simulation errors.
pub fn run_e2e(
    model: &ModelConfig,
    batch: usize,
    variant: &E2eVariant,
    seed: u64,
) -> Result<E2eReport> {
    // QKV generation + output projection as one fused dense GEMM.
    let qkv = run_graph(qkv_graph(model, batch)?)?;

    // Attention over a median-variability KV trace (§5.5).
    let kv = kv_lengths(&KvTraceConfig {
        batch,
        variability: Variability::Medium,
        median_len: 1024.0,
        seed,
        ..KvTraceConfig::default()
    });
    let attn_cfg = AttentionCfg::new(model.clone(), variant.attention);
    let attn = run_graph(attention_graph(&attn_cfg, &kv)?)?;

    // MoE with the variant's tiling / multiplexing.
    let routing = expert_routing(&RoutingConfig {
        experts: model.experts,
        top_k: model.top_k,
        batch,
        skew: 0.8,
        seed: seed ^ 0x5eed,
    });
    let mut moe_cfg = MoeCfg::new(model.clone(), variant.tiling);
    if let Some(r) = variant.moe_regions {
        moe_cfg = moe_cfg.with_regions(r);
    }
    let moe = run_moe_graph(moe_graph(&moe_cfg, &routing)?)?;

    let layer_cycles = qkv.cycles + attn.cycles + moe.cycles;
    Ok(E2eReport {
        qkv_cycles: qkv.cycles,
        attn_cycles: attn.cycles,
        moe_cycles: moe.cycles,
        layer_cycles,
        total_cycles: layer_cycles * model.layers,
        onchip_bytes: qkv.onchip_memory + attn.onchip_memory + moe.onchip_memory,
        allocated_compute: qkv.allocated_compute + attn.allocated_compute + moe.allocated_compute,
        offchip_traffic: (qkv.offchip_traffic + attn.offchip_traffic + moe.offchip_traffic)
            * model.layers,
    })
}

// ---------------------------------------------------------------------
// Multi-iteration decode driver
// ---------------------------------------------------------------------

/// Configuration of the multi-iteration decode driver.
#[derive(Debug, Clone)]
pub struct DecodeCfg {
    /// Decode iterations to step the batch through (every request's KV
    /// cache grows by one token per iteration).
    pub iterations: u32,
    /// Median prompt length at iteration 0, in tokens.
    pub median_prompt: f64,
    /// KV-length variability class of the prompt batch.
    pub variability: Variability,
    /// RNG seed (prompt lengths + per-iteration routing).
    pub seed: u64,
}

impl Default for DecodeCfg {
    fn default() -> DecodeCfg {
        DecodeCfg {
            iterations: 4,
            median_prompt: 1024.0,
            variability: Variability::Medium,
            seed: 7,
        }
    }
}

/// One decode iteration's simulated phases.
#[derive(Debug, Clone)]
pub struct DecodeIteration {
    /// Iteration index (0 = first decode step after prefill).
    pub iter: u32,
    /// QKV + output projection cycles.
    pub qkv_cycles: u64,
    /// Attention cycles over the iteration's grown KV caches.
    pub attn_cycles: u64,
    /// MoE cycles under the iteration's re-sampled routing.
    pub moe_cycles: u64,
    /// One decoder layer (sum of phases).
    pub layer_cycles: u64,
    /// Total KV tokens attended over this iteration.
    pub kv_tokens: u64,
    /// Experts receiving at least one token this iteration.
    pub active_experts: usize,
}

/// The decode driver's aggregate results.
#[derive(Debug, Clone)]
pub struct DecodeReport {
    /// Per-iteration phase breakdowns.
    pub iterations: Vec<DecodeIteration>,
    /// Whole-model cycles across all iterations (`Σ layer × layers`).
    pub total_cycles: u64,
    /// Whole-model off-chip traffic across all iterations, bytes.
    pub offchip_traffic: u64,
}

/// Steps a batch through `cfg.iterations` successive decode iterations —
/// the first serving-shaped workload in the repo — reusing **one**
/// [`SimPlan`] per phase for the whole loop.
///
/// Per iteration, only the inputs change, and they ride in on source
/// rebinding ([`RunBinding::bind_source`]):
///
/// - every request's KV cache grows by one token, so the attention
///   plan's `attn.requests` source is rebound with the iteration's
///   longer tile-address stream ([`attention_request_tokens`]; the plan
///   is built with [`AttentionCfg::kv_headroom`] so its dispatch queues
///   already fit the final iteration);
/// - expert routing is re-sampled, so the MoE plan's `moe.router`
///   selector source is rebound with the fresh sample
///   ([`moe_router_tokens`]);
/// - QKV is one token per request regardless of iteration — the same
///   plan runs unbound.
///
/// Graph construction, `step_core::partition`, and channel-topology
/// layout run once per phase, not once per iteration. Each phase also
/// keeps a [`RunPool`], so after the first iteration materializes the
/// run state, later iterations reset it in place
/// ([`SimPlan::pooled_run_bound`]) instead of reallocating channels and
/// ledgers — the steady-state loop is allocation-free per run.
///
/// # Errors
///
/// Propagates graph-construction and simulation errors; rejects
/// `iterations == 0`.
pub fn run_decode(
    model: &ModelConfig,
    batch: usize,
    variant: &E2eVariant,
    cfg: &DecodeCfg,
) -> Result<DecodeReport> {
    if cfg.iterations == 0 {
        return Err(step_core::StepError::Config(
            "decode driver needs at least one iteration".into(),
        ));
    }
    // Prompt lengths at iteration 0; request r attends over
    // `prompt[r] + i` tokens at iteration i.
    let prompts = kv_lengths(&KvTraceConfig {
        batch,
        variability: cfg.variability,
        median_len: cfg.median_prompt,
        seed: cfg.seed,
        ..KvTraceConfig::default()
    });
    let kv_at = |i: u32| KvTrace {
        lengths: prompts.lengths.iter().map(|&l| l + i).collect(),
    };
    let routing_at = |i: u32| {
        expert_routing(&RoutingConfig {
            experts: model.experts,
            top_k: model.top_k,
            batch,
            skew: 0.8,
            // Iteration 0 matches `run_e2e`'s trace; later iterations
            // re-sample deterministically.
            seed: cfg.seed ^ 0x5eed ^ u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        })
    };

    // Build each phase's plan exactly once.
    let attn_cfg =
        AttentionCfg::new(model.clone(), variant.attention).with_kv_headroom(cfg.iterations - 1);
    let (attn_graph, attn_ports) = attention_graph_with_ports(&attn_cfg, &kv_at(0))?;
    let attn_plan = SimPlan::new(attn_graph, SimConfig::default())?;
    let mut moe_cfg = MoeCfg::new(model.clone(), variant.tiling);
    if let Some(r) = variant.moe_regions {
        moe_cfg = moe_cfg.with_regions(r);
    }
    let (moe_g, moe_ports) = moe_graph_with_ports(&moe_cfg, &routing_at(0))?;
    let moe_plan = SimPlan::new(moe_g, moe_sim_config())?;
    // QKV is one token per request regardless of iteration: simulate
    // the count once up front and reuse the report every iteration
    // (reruns are bit-identical anyway, so this changes nothing but
    // wall time).
    let qkv = SimPlan::new(qkv_graph(model, batch)?, SimConfig::default())?.run()?;

    let mut iterations = Vec::with_capacity(cfg.iterations as usize);
    let (mut total_cycles, mut offchip_traffic) = (0u64, 0u64);
    let (mut attn_pool, mut moe_pool) = (RunPool::new(), RunPool::new());
    for i in 0..cfg.iterations {
        let kv = kv_at(i);
        let routing = routing_at(i);
        let attn_bind = bind_attention(&attn_cfg, &attn_ports, &kv);
        let attn = attn_plan.pooled_run_bound(&attn_bind, &mut attn_pool)?;
        let moe_bind = bind_moe(&moe_ports, model.hidden, &routing);
        let moe = moe_plan.pooled_run_bound(&moe_bind, &mut moe_pool)?;
        // Steady-state contract: after the warmup iteration, pooled runs
        // reset parked state in place — no rebuilds, no reallocation.
        debug_assert_steady(&attn, i > 0);
        debug_assert_steady(&moe, i > 0);
        let layer_cycles = qkv.cycles + attn.cycles + moe.cycles;
        total_cycles += layer_cycles * model.layers;
        offchip_traffic +=
            (qkv.offchip_traffic + attn.offchip_traffic + moe.offchip_traffic) * model.layers;
        iterations.push(DecodeIteration {
            iter: i,
            qkv_cycles: qkv.cycles,
            attn_cycles: attn.cycles,
            moe_cycles: moe.cycles,
            layer_cycles,
            kv_tokens: kv.total(),
            active_experts: routing.active_experts(),
        });
    }
    Ok(DecodeReport {
        iterations,
        total_cycles,
        offchip_traffic,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ModelConfig {
        ModelConfig {
            name: "tiny",
            hidden: 128,
            moe_intermediate: 256,
            experts: 4,
            top_k: 2,
            q_heads: 4,
            kv_heads: 2,
            head_dim: 32,
            layers: 2,
        }
    }

    #[test]
    fn e2e_runs_and_scales_with_layers() {
        let r = run_e2e(&tiny(), 8, &E2eVariant::static_schedule("s", 4), 1).unwrap();
        assert_eq!(r.total_cycles, r.layer_cycles * 2);
        assert_eq!(r.layer_cycles, r.qkv_cycles + r.attn_cycles + r.moe_cycles);
        assert!(r.onchip_bytes > 0);
        assert!(r.allocated_compute > 0);
    }

    #[test]
    fn dynamic_variant_runs_with_regions() {
        let r = run_e2e(&tiny(), 8, &E2eVariant::dynamic_schedule(Some(2)), 1).unwrap();
        assert!(r.moe_cycles > 0);
        let spatial = run_e2e(&tiny(), 8, &E2eVariant::dynamic_schedule(None), 1).unwrap();
        assert!(r.allocated_compute < spatial.allocated_compute);
    }

    #[test]
    fn decode_driver_steps_kv_and_reuses_plans() {
        let cfg = DecodeCfg {
            iterations: 3,
            median_prompt: 64.0,
            variability: Variability::Low,
            seed: 1,
        };
        let r = run_decode(&tiny(), 8, &E2eVariant::static_schedule("s", 4), &cfg).unwrap();
        assert_eq!(r.iterations.len(), 3);
        // Every request's KV cache grows by exactly one token per
        // iteration (batch 8).
        assert!(
            r.iterations
                .windows(2)
                .all(|w| w[1].kv_tokens == w[0].kv_tokens + 8)
        );
        // QKV is iteration-independent: the same unbound plan must
        // reproduce itself bit for bit.
        assert!(
            r.iterations
                .windows(2)
                .all(|w| w[0].qkv_cycles == w[1].qkv_cycles)
        );
        assert_eq!(
            r.total_cycles,
            r.iterations
                .iter()
                .map(|it| it.layer_cycles * 2)
                .sum::<u64>()
        );
    }

    #[test]
    fn decode_iteration_zero_matches_fresh_built_e2e() {
        // Iteration 0 plays exactly the traces `run_e2e` builds fresh
        // graphs for (same seeds, headroom 0 at iterations=1), so the
        // reused-plan path must reproduce every phase's cycles exactly.
        let model = tiny();
        let v = E2eVariant::static_schedule("s", 4);
        let fresh = run_e2e(&model, 8, &v, 7).unwrap();
        let cfg = DecodeCfg {
            iterations: 1,
            ..DecodeCfg::default()
        };
        let reused = run_decode(&model, 8, &v, &cfg).unwrap();
        let it = &reused.iterations[0];
        assert_eq!(
            (it.qkv_cycles, it.attn_cycles, it.moe_cycles),
            (fresh.qkv_cycles, fresh.attn_cycles, fresh.moe_cycles)
        );
    }

    #[test]
    fn decode_dynamic_variant_runs() {
        let cfg = DecodeCfg {
            iterations: 2,
            median_prompt: 64.0,
            variability: Variability::High,
            seed: 3,
        };
        let r = run_decode(&tiny(), 8, &E2eVariant::dynamic_schedule(Some(2)), &cfg).unwrap();
        assert_eq!(r.iterations.len(), 2);
        assert!(r.iterations.iter().all(|it| it.layer_cycles > 0));
        assert!(r.offchip_traffic > 0);
    }

    #[test]
    fn decode_rejects_zero_iterations() {
        let cfg = DecodeCfg {
            iterations: 0,
            ..DecodeCfg::default()
        };
        assert!(run_decode(&tiny(), 8, &E2eVariant::static_schedule("s", 4), &cfg).is_err());
    }
}
