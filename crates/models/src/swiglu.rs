//! The SwiGLU layer (§4.5's validation workload) and a generic dense GEMM
//! subgraph used by QKV generation.
//!
//! `SwiGLU(x) = (silu(x·W1) ⊙ (x·W3)) · W2` with `W1, W3: [H, I]` and
//! `W2: [I, H]`. The schedule tiles the batch dimension by `tile_batch`
//! and the intermediate dimension by `tile_inter`: per batch tile, the
//! three weight matrices are streamed from off-chip in column/row strips,
//! the gate/up products are fused through a `SiluMul` map, and the down
//! projection accumulates partial sums on-chip. Smaller batch tiles
//! reload the weights more often (off-chip traffic ∝ `⌈B/Tb⌉`); larger
//! tiles cost more on-chip memory — the trade-off swept in Fig 8.

use step_core::Result;
use step_core::func::{AccumFn, BinOp, MapFn};
use step_core::graph::{GraphBuilder, NodeId, StreamRef};
use step_core::ops::LinearLoadCfg;

/// Base addresses used by the standalone SwiGLU graph.
pub mod layout {
    /// Input activations.
    pub const X: u64 = 0x0100_0000;
    /// Gate weight `W1`.
    pub const W1: u64 = 0x1000_0000;
    /// Up weight `W3`.
    pub const W3: u64 = 0x2000_0000;
    /// Down weight `W2`.
    pub const W2: u64 = 0x3000_0000;
    /// Output activations.
    pub const OUT: u64 = 0x4000_0000;
}

/// SwiGLU layer configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwigluCfg {
    /// Batch (token) dimension.
    pub batch: u64,
    /// Hidden dimension.
    pub hidden: u64,
    /// Intermediate dimension.
    pub inter: u64,
    /// Batch tile size (`Tb`).
    pub tile_batch: u64,
    /// Intermediate tile size (`Ti`).
    pub tile_inter: u64,
    /// Compute bandwidth per matmul map, FLOPs/cycle.
    pub compute_bw: u64,
}

impl SwigluCfg {
    /// The Fig 8 workload: batch 64, hidden 256, intermediate 512.
    pub fn validation(tile_batch: u64, tile_inter: u64) -> SwigluCfg {
        SwigluCfg {
            batch: 64,
            hidden: 256,
            inter: 512,
            tile_batch,
            tile_inter,
            compute_bw: 4096,
        }
    }

    fn check(&self) -> Result<()> {
        use step_core::StepError;
        if !self.batch.is_multiple_of(self.tile_batch) {
            return Err(StepError::Config(format!(
                "batch {} not divisible by tile {}",
                self.batch, self.tile_batch
            )));
        }
        if !self.inter.is_multiple_of(self.tile_inter) {
            return Err(StepError::Config(format!(
                "intermediate {} not divisible by tile {}",
                self.inter, self.tile_inter
            )));
        }
        Ok(())
    }
}

/// Appends the SwiGLU subgraph to `g`, returning the output-store node.
///
/// # Errors
///
/// Returns [`step_core::StepError::Config`] for non-dividing tile sizes.
pub fn build_swiglu(g: &mut GraphBuilder, cfg: &SwigluCfg) -> Result<NodeId> {
    cfg.check()?;
    let (b, h, i) = (cfg.batch, cfg.hidden, cfg.inter);
    let (tb, ti) = (cfg.tile_batch, cfg.tile_inter);
    let strips = i / ti;

    // One trigger reads the whole activation tensor as [Tb, H] tiles.
    let trigger = g.unit_source(1);
    let x = g.linear_offchip_load(&trigger, LinearLoadCfg::new(layout::X, (b, h), (tb, h)))?;
    g.label_last("swiglu.x-load");
    let x = g.flatten(&x, 0, 2)?; // [B/Tb]

    let xf = g.fork(&x, 2)?;
    let wtrig = g.fork(&xf[0], 3)?;

    // Broadcast each activation tile across the intermediate strips.
    let (x1, _) = g.reshape(&xf[1], 1, None)?;
    let bx = g.expand_static(&x1, strips)?; // [B/Tb, I/Ti]
    let bxf = g.fork(&bx, 2)?;

    let w1 = g.linear_offchip_load(&wtrig[0], LinearLoadCfg::new(layout::W1, (h, i), (h, ti)))?;
    g.label_last("swiglu.w1-load");
    let w1 = g.flatten(&w1, 0, 1)?;
    let w3 = g.linear_offchip_load(&wtrig[1], LinearLoadCfg::new(layout::W3, (h, i), (h, ti)))?;
    g.label_last("swiglu.w3-load");
    let w3 = g.flatten(&w3, 0, 1)?;
    let w2 = g.linear_offchip_load(&wtrig[2], LinearLoadCfg::new(layout::W2, (i, h), (ti, h)))?;
    g.label_last("swiglu.w2-load");
    let w2 = g.flatten(&w2, 0, 1)?;

    let gate = g.map2(&bxf[0], &w1, MapFn::Matmul, cfg.compute_bw)?;
    g.label_last("swiglu.gate");
    let up = g.map2(&bxf[1], &w3, MapFn::Matmul, cfg.compute_bw)?;
    g.label_last("swiglu.up");
    let act = g.map2(&gate, &up, MapFn::Binary(BinOp::SiluMul), cfg.compute_bw)?;
    g.label_last("swiglu.silu-mul");
    let part = g.map2(&act, &w2, MapFn::Matmul, cfg.compute_bw)?;
    g.label_last("swiglu.down");
    let out = g.accum(&part, 1, AccumFn::AddTiles, cfg.compute_bw)?;
    g.label_last("swiglu.down-acc");
    let store = g.linear_offchip_store(&out, layout::OUT)?;
    g.label_last("swiglu.out-store");
    Ok(store)
}

/// Builds a standalone SwiGLU graph.
///
/// # Errors
///
/// Propagates [`build_swiglu`] errors.
pub fn swiglu_graph(cfg: &SwigluCfg) -> Result<step_core::Graph> {
    let mut g = GraphBuilder::new();
    build_swiglu(&mut g, cfg)?;
    Ok(g.finish())
}

/// Dense GEMM configuration (`X[B,H] · W[H,N]`, batch-tiled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GemmCfg {
    /// Rows of X.
    pub batch: u64,
    /// Inner dimension.
    pub hidden: u64,
    /// Columns of W.
    pub n: u64,
    /// Batch tile.
    pub tile_batch: u64,
    /// Column strip width.
    pub tile_n: u64,
    /// X base address.
    pub x_addr: u64,
    /// W base address.
    pub w_addr: u64,
    /// Output base address.
    pub out_addr: u64,
    /// Compute bandwidth per matmul map.
    pub compute_bw: u64,
}

/// Appends a batch-tiled dense GEMM subgraph; the weight is reloaded once
/// per batch tile.
///
/// # Errors
///
/// Returns [`step_core::StepError::Config`] for non-dividing tiles.
pub fn build_gemm(g: &mut GraphBuilder, cfg: &GemmCfg) -> Result<StreamRef> {
    use step_core::StepError;
    if !cfg.batch.is_multiple_of(cfg.tile_batch) || !cfg.n.is_multiple_of(cfg.tile_n) {
        return Err(StepError::Config("gemm tiles must divide dims".into()));
    }
    let strips = cfg.n / cfg.tile_n;
    let trigger = g.unit_source(1);
    let x = g.linear_offchip_load(
        &trigger,
        LinearLoadCfg::new(
            cfg.x_addr,
            (cfg.batch, cfg.hidden),
            (cfg.tile_batch, cfg.hidden),
        ),
    )?;
    let x = g.flatten(&x, 0, 2)?;
    let xf = g.fork(&x, 2)?;
    let (x1, _) = g.reshape(&xf[1], 1, None)?;
    let bx = g.expand_static(&x1, strips)?;
    let w = g.linear_offchip_load(
        &xf[0],
        LinearLoadCfg::new(cfg.w_addr, (cfg.hidden, cfg.n), (cfg.hidden, cfg.tile_n)),
    )?;
    let w = g.flatten(&w, 0, 1)?;
    let out = g.map2(&bx, &w, MapFn::Matmul, cfg.compute_bw)?;
    g.linear_offchip_store(&out, cfg.out_addr)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use step_sim::{SimConfig, Simulation};

    fn run(cfg: &SwigluCfg) -> step_sim::SimReport {
        Simulation::new(swiglu_graph(cfg).unwrap(), SimConfig::validation())
            .unwrap()
            .run()
            .unwrap()
    }

    #[test]
    fn traffic_matches_analytic_model() {
        let cfg = SwigluCfg::validation(32, 64);
        let report = run(&cfg);
        let reloads = cfg.batch / cfg.tile_batch; // 2
        let w_bytes = 3 * cfg.hidden * cfg.inter * 2;
        let io_bytes = 2 * cfg.batch * cfg.hidden * 2; // X read + OUT write
        assert_eq!(report.offchip_traffic, reloads * w_bytes + io_bytes);
    }

    #[test]
    fn smaller_batch_tiles_cost_more_traffic_and_cycles() {
        let small = run(&SwigluCfg::validation(16, 64));
        let large = run(&SwigluCfg::validation(64, 64));
        assert!(small.offchip_traffic > large.offchip_traffic);
        assert!(small.cycles > large.cycles);
    }

    #[test]
    fn larger_tiles_use_more_onchip_memory() {
        let small = run(&SwigluCfg::validation(16, 16));
        let large = run(&SwigluCfg::validation(64, 256));
        assert!(large.onchip_memory > small.onchip_memory);
    }

    #[test]
    fn flops_match_analytic_model() {
        let cfg = SwigluCfg::validation(32, 128);
        let report = run(&cfg);
        let gemm_flops = 2 * cfg.batch * cfg.hidden * cfg.inter;
        // gate + up + down matmuls, 5 flops/elem SiluMul, and the
        // down-projection accumulator's elementwise adds.
        let expected = 3 * gemm_flops
            + 5 * cfg.batch * cfg.inter
            + cfg.batch * cfg.hidden * (cfg.inter / cfg.tile_inter);
        assert_eq!(report.total_flops, expected);
    }

    #[test]
    fn invalid_tiles_rejected() {
        assert!(swiglu_graph(&SwigluCfg::validation(48, 64)).is_err());
        assert!(swiglu_graph(&SwigluCfg::validation(64, 100)).is_err());
    }

    #[test]
    fn gemm_subgraph_runs() {
        let mut g = GraphBuilder::new();
        build_gemm(
            &mut g,
            &GemmCfg {
                batch: 64,
                hidden: 128,
                n: 256,
                tile_batch: 32,
                tile_n: 64,
                x_addr: 0x10_0000,
                w_addr: 0x20_0000,
                out_addr: 0x30_0000,
                compute_bw: 1024,
            },
        )
        .unwrap();
        let report = Simulation::new(g.finish(), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        // W reloaded twice + X once + OUT once.
        assert_eq!(
            report.offchip_traffic,
            2 * 128 * 256 * 2 + 64 * 128 * 2 + 64 * 256 * 2
        );
    }
}
