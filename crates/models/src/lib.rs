//! LLM layers expressed as STeP programs, with the schedules evaluated in
//! the paper (§5).
//!
//! - [`config`] — model configurations (Mixtral-8x7B, Qwen3-30B-A3B) and
//!   hardware-facing constants;
//! - [`swiglu`] — the SwiGLU layer used for simulator validation (§4.5,
//!   Fig 8), parameterized by batch/intermediate tile sizes;
//! - [`moe`] — the Mixture-of-Experts layer with static tiling, dynamic
//!   tiling (§5.2), and configuration time-multiplexing (§5.3);
//! - [`attention`] — decode attention with static coarse, static
//!   interleaved, and dynamic parallelization (§5.4, Fig 16);
//! - [`e2e`] — full decoder-layer and model-level composition (§5.5).
//!
//! Every builder returns a plain [`step_core::Graph`]; run it with
//! [`step_sim::Simulation`].

pub mod attention;
pub mod config;
pub mod e2e;
pub mod moe;
pub mod swiglu;

pub use config::ModelConfig;
