//! LLM layers expressed as STeP programs, with the schedules evaluated in
//! the paper (§5).
//!
//! - [`config`] — model configurations (Mixtral-8x7B, Qwen3-30B-A3B) and
//!   hardware-facing constants;
//! - [`swiglu`] — the SwiGLU layer used for simulator validation (§4.5,
//!   Fig 8), parameterized by batch/intermediate tile sizes;
//! - [`moe`] — the Mixture-of-Experts layer with static tiling, dynamic
//!   tiling (§5.2), and configuration time-multiplexing (§5.3);
//! - [`attention`] — decode attention with static coarse, static
//!   interleaved, and dynamic parallelization (§5.4, Fig 16);
//! - [`e2e`] — full decoder-layer and model-level composition (§5.5);
//! - [`phases`] — the per-iteration rebinding and steady-state machinery
//!   shared by the multi-iteration drivers;
//! - [`serving`] — the continuous-batching serving driver.
//!
//! Every builder returns a plain [`step_core::Graph`]; run it with
//! [`step_sim::Simulation`].
//!
//! # Serving workloads
//!
//! [`serving::run_serve`] drives an open-loop request trace
//! ([`step_traces::arrival_trace`]) through per-iteration admission (up
//! to a slot budget), eviction of finished requests, and prefill/decode
//! interleaving with optional chunked prefill. The churning batch rides
//! on [`step_sim::RunBinding`] rebinding over one frozen plan per phase,
//! so steady-state iterations are alloc-free. Reported metrics: TTFT
//! (arrival to first output token, queueing included), TPOT (first
//! token to completion per remaining output token), goodput (completed
//! requests per million cycles), and HBM pressure (off-chip bytes per
//! busy cycle). Every serving run is a pure function of
//! `(model, variant, trace, ServeCfg minus threads)` — bit-identical
//! across reruns, thread counts, and pooled vs fresh run state.
//!
//! Steady-state iterations additionally memoize their QKV and MoE
//! reports through a binding-keyed [`step_sim::ReportCache`] (reports
//! are pure functions of `(plan, binding)`, so replay is exact):
//! [`phases::qkv_fingerprint`] keys the bindingless QKV phase,
//! [`phases::canonical_routing`] optionally canonicalizes MoE routings
//! before binding ([`serving::ServeCfg::moe_canonical`]) so
//! order-permuted routings share one exact entry, and
//! [`serving::ServeReport::engine_fires`] reports the fires the engine
//! actually executed versus the logical total. The differential proof
//! (and the measured refutation of order-permuted *replay*) lives in
//! `tests/report_memo_conformance.rs`.

pub mod attention;
pub mod config;
pub mod e2e;
pub mod moe;
pub mod phases;
pub mod serving;
pub mod swiglu;

pub use config::ModelConfig;
