//! Model configurations (§5.1).

/// Configuration of an MoE transformer model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelConfig {
    /// Model name for reports.
    pub name: &'static str,
    /// Hidden (model) dimension.
    pub hidden: u64,
    /// Per-expert MoE intermediate dimension.
    pub moe_intermediate: u64,
    /// Total routed experts per MoE layer.
    pub experts: u32,
    /// Experts activated per token.
    pub top_k: u32,
    /// Query heads.
    pub q_heads: u64,
    /// Key/value heads (GQA).
    pub kv_heads: u64,
    /// Per-head dimension.
    pub head_dim: u64,
    /// Decoder layers.
    pub layers: u64,
}

impl ModelConfig {
    /// Mixtral-8x7B.
    pub fn mixtral_8x7b() -> ModelConfig {
        ModelConfig {
            name: "Mixtral8x7B",
            hidden: 4096,
            moe_intermediate: 14336,
            experts: 8,
            top_k: 2,
            q_heads: 32,
            kv_heads: 8,
            head_dim: 128,
            layers: 32,
        }
    }

    /// Qwen3-30B-A3B.
    pub fn qwen3_30b_a3b() -> ModelConfig {
        ModelConfig {
            name: "Qwen3-30B-A3B",
            hidden: 2048,
            moe_intermediate: 768,
            experts: 128,
            top_k: 8,
            q_heads: 32,
            kv_heads: 4,
            head_dim: 128,
            layers: 48,
        }
    }

    /// Bytes per expert for the three SwiGLU weight matrices
    /// (gate + up: `hidden x inter` each, down: `inter x hidden`).
    pub fn expert_weight_bytes(&self) -> u64 {
        3 * self.hidden * self.moe_intermediate * step_core::DTYPE_BYTES
    }

    /// Bytes of KV cache per token (K and V across the KV heads).
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * self.kv_heads * self.head_dim * step_core::DTYPE_BYTES
    }

    /// Activated parameter FLOPs per token in one MoE layer (2 FLOPs per
    /// MAC over three matrices, times the activated experts).
    pub fn moe_flops_per_token(&self) -> u64 {
        2 * 3 * self.hidden * self.moe_intermediate * self.top_k as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixtral_expert_weights_are_hundreds_of_megabytes_total() {
        let m = ModelConfig::mixtral_8x7b();
        // 3 * 4096 * 14336 * 2B = 352 MB per expert... per expert ~336 MiB? No:
        // 3*4096*14336*2 = 352,321,536 bytes ≈ 336 MiB per expert.
        assert_eq!(m.expert_weight_bytes(), 3 * 4096 * 14336 * 2);
    }

    #[test]
    fn qwen_expert_is_small_but_many() {
        let q = ModelConfig::qwen3_30b_a3b();
        assert_eq!(q.expert_weight_bytes(), 3 * 2048 * 768 * 2);
        assert_eq!(q.experts, 128);
        assert_eq!(q.top_k, 8);
    }

    #[test]
    fn kv_bytes_per_token() {
        let q = ModelConfig::qwen3_30b_a3b();
        assert_eq!(q.kv_bytes_per_token(), 2 * 4 * 128 * 2);
        let m = ModelConfig::mixtral_8x7b();
        assert_eq!(m.kv_bytes_per_token(), 2 * 8 * 128 * 2);
    }
}
