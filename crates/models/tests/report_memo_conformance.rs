//! Conformance suite for serving-level report memoization.
//!
//! Three contracts:
//!
//! 1. **Cache-mode identity**: a serving run's [`ServeReport`] is
//!    unchanged by how its phase reports were obtained — fresh engine
//!    runs ([`ReportCache::disabled`]), memoized replays
//!    ([`ReportCache::new`]), differential re-simulation
//!    ([`ReportCache::checked`]), and warm reruns over a shared cache
//!    all compare equal (the report's `PartialEq` covers everything the
//!    simulation computed; only the host-side cache telemetry is
//!    excluded), across thread counts.
//! 2. **Canonical rebinding, proven not assumed**: across ≥16 routing
//!    seeds (× thread counts), order-permuted MoE routings collapse
//!    under [`canonical_routing`] to one binding and one
//!    [`moe_canonical_key`], and replay as **exact** hits through
//!    [`ReportCache::checked`] — which re-simulates every hit and
//!    asserts bit-identity. The same matrix carries the *refutation*
//!    that shaped the design: replaying an order-permuted binding
//!    without rebinding is measurably unsound (the [`ReportAggregates`]
//!    projection itself — cycles, rounds — drifts with token
//!    adjacency), so the suite demands at least one diverging
//!    permutation to prove checked mode has teeth.
//! 3. **Canonical serving mode**: with [`ServeCfg::moe_canonical`] on
//!    under a low-entropy routing regime, multiset collisions across
//!    iterations actually land exact-layer hits the default mode
//!    cannot, order-invariant metrics (traffic, FLOPs) are unchanged,
//!    and same-seed reruns stay bit-identical — differentially checked
//!    end to end.

use step_models::ModelConfig;
use step_models::e2e::E2eVariant;
use step_models::moe::{MoeCfg, moe_graph_with_ports};
use step_models::phases::{bind_moe, canonical_routing, moe_canonical_key, moe_sim_config};
use step_models::serving::{
    FreshPlans, ServeCfg, ServeReport, moe_build_trace, run_serve, run_serve_memo,
};
use step_sim::{ReportAggregates, ReportCache, Resolution, SimConfig, SimPlan, plan_content_key};
use step_traces::{
    ArrivalConfig, ArrivalPattern, LenDist, RequestTrace, RoutingConfig, RoutingTrace,
    arrival_trace, expert_routing,
};

fn tiny() -> ModelConfig {
    ModelConfig {
        name: "memo-tiny",
        hidden: 128,
        moe_intermediate: 256,
        experts: 4,
        top_k: 2,
        q_heads: 4,
        kv_heads: 2,
        head_dim: 32,
        layers: 2,
    }
}

fn trace(requests: usize, seed: u64) -> RequestTrace {
    arrival_trace(&ArrivalConfig {
        requests,
        mean_interarrival: 20_000.0,
        pattern: ArrivalPattern::Poisson,
        prompt: LenDist::new(48.0, 0.5, 8, 128),
        output: LenDist::new(3.0, 0.5, 1, 6),
        seed,
    })
}

fn cfg(threads: usize) -> ServeCfg {
    ServeCfg {
        slots: 4,
        token_budget: 16,
        prefill_chunk: Some(16),
        seed: 11,
        threads,
        ..ServeCfg::default()
    }
}

#[test]
fn cache_modes_and_thread_counts_are_report_identical() {
    let model = tiny();
    let v = E2eVariant::static_schedule("s", 4);
    let t = trace(8, 3);
    let baseline = run_serve(&model, &v, &t, &cfg(1)).unwrap();
    let phase_requests = 2 * baseline.iterations.len() as u64; // QKV + MoE
    for threads in [1usize, 2, 4] {
        let c = cfg(threads);
        for (mode, cache) in [
            ("disabled", ReportCache::disabled()),
            ("enabled", ReportCache::new()),
            ("checked", ReportCache::checked()),
        ] {
            let got = run_serve_memo(&model, &v, &t, &c, &FreshPlans, &cache).unwrap();
            assert_eq!(
                got, baseline,
                "threads={threads} mode={mode}: caching changed the report"
            );
            if mode == "disabled" {
                // The driver still counts its requests; a passthrough
                // cache resolves every one as a simulation.
                assert_eq!(got.report_cache.hits, 0);
                assert_eq!(got.report_cache.misses, phase_requests);
                assert_eq!(got.engine_fires, got.total_fires);
            } else {
                // Every QKV and MoE iteration went through the cache.
                assert_eq!(
                    got.report_cache.hits + got.report_cache.misses,
                    phase_requests,
                    "threads={threads} mode={mode}: request accounting broken"
                );
                assert_eq!(got.report_cache.canonical_hits, 0, "canonical is opt-in");
                assert!(got.engine_fires < got.total_fires, "no work was elided");
            }
        }
        // Warm rerun over a shared cache: every phase request replays,
        // only attention still reaches the engine.
        let shared = ReportCache::new();
        let cold = run_serve_memo(&model, &v, &t, &c, &FreshPlans, &shared).unwrap();
        let warm = run_serve_memo(&model, &v, &t, &c, &FreshPlans, &shared).unwrap();
        assert_eq!(cold, baseline);
        assert_eq!(warm, baseline);
        assert_eq!(warm.report_cache.misses, 0, "warm rerun missed the cache");
        assert_eq!(warm.report_cache.hits, phase_requests);
        assert!(
            warm.engine_fires < cold.engine_fires,
            "warm rerun executed no fewer fires ({} vs {})",
            warm.engine_fires,
            cold.engine_fires
        );
    }
}

/// A deterministic xorshift64* stream for the permutation draws.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Seeded Fisher–Yates permutation of the routing's token order — the
/// exact equivalence [`moe_canonical_key`] claims to erase.
fn permuted(routing: &RoutingTrace, rng: &mut Rng) -> RoutingTrace {
    let mut assignments = routing.assignments.clone();
    for i in (1..assignments.len()).rev() {
        let j = (rng.next() as usize) % (i + 1);
        assignments.swap(i, j);
    }
    RoutingTrace {
        assignments,
        experts: routing.experts,
    }
}

#[test]
fn canonical_rebinding_is_proven_across_seeds_and_threads() {
    let model = tiny();
    let v = E2eVariant::static_schedule("s", 4);
    let mut exact_replays = 0u64;
    let mut refuted_permutations = 0u64;
    for threads in [1usize, 2] {
        let serve_cfg = ServeCfg {
            threads,
            ..cfg(threads)
        };
        let build = moe_build_trace(&model, &serve_cfg);
        let mut moe_cfg = MoeCfg::new(model.clone(), v.tiling);
        if let Some(r) = v.moe_regions {
            moe_cfg = moe_cfg.with_regions(r);
        }
        let (graph, ports) = moe_graph_with_ports(&moe_cfg, &build).unwrap();
        let sim_cfg = SimConfig {
            threads,
            ..moe_sim_config()
        };
        let plan = SimPlan::new(graph, sim_cfg.clone()).unwrap();
        let plan_key = plan_content_key(0x5EED, &sim_cfg);
        // The differential cache *is* the proof: exact hits in checked
        // mode re-simulate and assert full bit-identity.
        let cache = ReportCache::checked();
        for seed in 0..16u64 {
            let base = expert_routing(&RoutingConfig {
                experts: model.experts,
                top_k: model.top_k,
                batch: serve_cfg.token_budget,
                skew: 0.8,
                seed: seed * 31 + 5,
            });
            let key = moe_canonical_key(&base);
            let canon = canonical_routing(&base);
            let cbind = bind_moe(&ports, model.hidden, &canon);
            let first = cache
                .replay_or_run(plan_key, &cbind, None, &mut || plan.run_bound(&cbind))
                .unwrap();
            assert_eq!(first.resolution, Resolution::Simulated);
            let base_aggregates = ReportAggregates::of(
                &plan
                    .run_bound(&bind_moe(&ports, model.hidden, &base))
                    .unwrap(),
            );
            let mut rng = Rng(seed + 1);
            for round in 0..3 {
                let p = permuted(&base, &mut rng);
                // The canonical form erases exactly the token order:
                // same key, same canonicalized trace, same binding.
                assert_eq!(
                    moe_canonical_key(&p),
                    key,
                    "seed {seed} round {round}: canonical key not order-invariant"
                );
                let pcanon = canonical_routing(&p);
                assert_eq!(
                    pcanon.assignments, canon.assignments,
                    "seed {seed} round {round}: canonical traces diverged"
                );
                let pbind = bind_moe(&ports, model.hidden, &pcanon);
                let got = cache
                    .replay_or_run(plan_key, &pbind, None, &mut || plan.run_bound(&pbind))
                    .unwrap();
                // An exact hit, bit-identical — re-simulated and
                // asserted by the checked cache before we ever see it.
                assert_eq!(
                    got.resolution,
                    Resolution::Exact,
                    "seed {seed} round {round}: canonicalized permutation missed"
                );
                exact_replays += 1;
                // The refutation that motivated rebinding: the *raw*
                // permuted binding is not even aggregate-equivalent to
                // the base order — token adjacency moves run
                // coalescing, and through scheduling, cycles/rounds.
                let raw = ReportAggregates::of(
                    &plan.run_bound(&bind_moe(&ports, model.hidden, &p)).unwrap(),
                );
                if raw != base_aggregates {
                    refuted_permutations += 1;
                }
            }
        }
    }
    assert_eq!(
        exact_replays,
        2 * 16 * 3,
        "every canonicalized permutation must replay exactly"
    );
    assert!(
        refuted_permutations > 0,
        "no order permutation moved the aggregate projection — the canonical \
         *replay* class may be sound after all; revisit the rebinding design"
    );
}

/// The order-invariant slice of a [`ServeReport`]: per-iteration token
/// counts, the untouched QKV/attention phase timings, per-iteration
/// data movement, and per-request admission composition. Canonicalizing
/// the MoE routing erases token order and nothing else, so these must
/// match the default mode exactly; MoE *cycle* timings — and the
/// wall-clock completion timestamps they feed — are allowed to drift by
/// a few cycles (run coalescing follows token adjacency) and are
/// deliberately excluded.
#[allow(clippy::type_complexity)]
fn order_invariant_view(
    r: &ServeReport,
) -> (
    Vec<(u32, u64, u64, u64)>,
    Vec<(u32, u64, u64, u32, u32)>,
    u64,
) {
    (
        r.iterations
            .iter()
            .map(|it| (it.tokens, it.qkv_cycles, it.attn_cycles, it.offchip_traffic))
            .collect(),
        r.outcomes
            .iter()
            .map(|o| (o.id, o.arrival, o.admitted, o.prompt, o.output))
            .collect(),
        r.offchip_traffic,
    )
}

#[test]
fn canonical_serving_mode_lands_exact_hits_and_keeps_order_invariant_metrics() {
    let model = tiny();
    let v = E2eVariant::static_schedule("s", 4);
    let t = trace(10, 9);
    // A low-entropy routing regime (few distinct expert sets per
    // iteration) so multiset collisions across iterations actually
    // happen — with 4 experts, top-2, and strong skew the per-token set
    // distribution concentrates on a handful of classes.
    let off = ServeCfg {
        skew: 3.0,
        ..cfg(1)
    };
    let on = ServeCfg {
        moe_canonical: true,
        ..off.clone()
    };
    let plain = run_serve_memo(&model, &v, &t, &off, &FreshPlans, &ReportCache::new()).unwrap();
    // Checked mode re-simulates every exact hit and asserts bit-identity
    // — running the whole serve loop through it is the end-to-end
    // version of the seed-matrix proof above.
    let canon = run_serve_memo(&model, &v, &t, &on, &FreshPlans, &ReportCache::checked()).unwrap();
    // Rebinding lands the sharing in the *exact* layer: order-permuted
    // iterations collapse to one binding before the cache ever sees
    // them, so canonical mode wins extra exact hits — not canonical ones.
    assert_eq!(
        canon.report_cache.canonical_hits, 0,
        "serving nominates no classes"
    );
    assert!(
        canon.report_cache.hits > plain.report_cache.hits,
        "canonical mode won no extra exact hits ({:?} vs {:?}) — the \
         low-entropy regime is not producing multiset collisions",
        canon.report_cache,
        plain.report_cache
    );
    assert!(
        canon.engine_fires < plain.engine_fires,
        "the extra hits elided no engine work ({} vs {})",
        canon.engine_fires,
        plain.engine_fires
    );
    assert_eq!(
        order_invariant_view(&canon),
        order_invariant_view(&plain),
        "canonicalizing the routing changed an order-invariant metric"
    );
    // Same-seed canonical-on reruns are bit-identical — fires and all —
    // whether the cache replays (enabled) or differentially re-simulates
    // (checked).
    let rerun = run_serve_memo(&model, &v, &t, &on, &FreshPlans, &ReportCache::new()).unwrap();
    assert_eq!(canon, rerun);
    assert_eq!(canon.total_fires, rerun.total_fires);
    assert_eq!(canon.chan_runs, rerun.chan_runs);
    assert_eq!(canon.engine_fires, rerun.engine_fires);
    assert!(
        canon.goodput_per_mcycle > 0.0,
        "the canonical run served nothing"
    );
}
