//! Differential conformance for the continuous-batching serving driver.
//!
//! The driver's whole performance story rests on per-iteration
//! `RunBinding` rebinding over frozen plans being *observationally
//! equivalent* to rebuilding the iteration from scratch. This suite
//! locks that in:
//!
//! - **Offline replay**: every serving iteration's admitted set is
//!   rebuilt as a fresh one-shot simulation — the same build-time
//!   graphs (envelope KV trace, token-budget MoE trace), a fresh
//!   `SimPlan`, the iteration's binding — and must reproduce the
//!   driver's per-iteration cycles, fires, and channel runs bit-exactly;
//! - **Thread independence**: same-seed serving runs are bit-identical
//!   across 1, 2, and 4 worker threads;
//! - **Pooling transparency**: pooled run state (the alloc-free steady
//!   state) and fresh per-iteration run state produce identical reports;
//! - **Scheduling invariants**: admission never exceeds the slot
//!   budget, per-iteration tokens never exceed the token budget, and
//!   every admitted request completes (no starvation).

use step_models::ModelConfig;
use step_models::attention::{AttentionCfg, attention_graph_with_ports};
use step_models::e2e::E2eVariant;
use step_models::moe::{MoeCfg, moe_graph_with_ports};
use step_models::phases::{bind_attention, bind_moe, moe_sim_config, qkv_graph};
use step_models::serving::{
    ServeCfg, ServeReport, envelope_kv, iteration_routing, moe_build_trace, run_serve,
};
use step_sim::{SimConfig, SimPlan};
use step_traces::{ArrivalConfig, ArrivalPattern, KvTrace, LenDist, RequestTrace, arrival_trace};

fn tiny_model() -> ModelConfig {
    ModelConfig {
        name: "tiny",
        hidden: 128,
        moe_intermediate: 256,
        experts: 4,
        top_k: 2,
        q_heads: 4,
        kv_heads: 2,
        head_dim: 32,
        layers: 2,
    }
}

fn trace(requests: usize, mean: f64, seed: u64) -> RequestTrace {
    arrival_trace(&ArrivalConfig {
        requests,
        mean_interarrival: mean,
        pattern: ArrivalPattern::Poisson,
        prompt: LenDist::new(40.0, 0.5, 8, 96),
        output: LenDist::new(3.0, 0.5, 1, 6),
        seed,
    })
}

fn serve_cfg() -> ServeCfg {
    ServeCfg {
        slots: 4,
        token_budget: 16,
        prefill_chunk: Some(8),
        seed: 23,
        ..ServeCfg::default()
    }
}

fn variant() -> E2eVariant {
    E2eVariant::static_schedule("static", 4)
}

fn serve(cfg: &ServeCfg) -> ServeReport {
    run_serve(&tiny_model(), &variant(), &trace(8, 20_000.0, 9), cfg).unwrap()
}

/// Replays every driver iteration offline as fresh one-shot simulations
/// of the same graphs and bindings, asserting the driver's per-iteration
/// cycles/fires/chan-runs reproduce bit-exactly; returns the driver
/// report for further assertions.
fn replay_offline(
    model: &ModelConfig,
    v: &E2eVariant,
    tr: &RequestTrace,
    cfg: &ServeCfg,
) -> ServeReport {
    let report = run_serve(model, v, tr, cfg).unwrap();
    assert!(!report.iterations.is_empty());

    // The driver's build-time graphs, rebuilt from the public helpers.
    let attn_cfg = AttentionCfg::new(model.clone(), v.attention);
    let (attn_graph, attn_ports) =
        attention_graph_with_ports(&attn_cfg, &envelope_kv(tr, cfg)).unwrap();
    let mut moe_cfg = MoeCfg::new(model.clone(), v.tiling);
    if let Some(r) = v.moe_regions {
        moe_cfg = moe_cfg.with_regions(r);
    }
    let (moe_graph, moe_ports) =
        moe_graph_with_ports(&moe_cfg, &moe_build_trace(model, cfg)).unwrap();

    for it in &report.iterations {
        // Fresh plans every iteration: no pools, no reuse, no shared
        // state with the driver — the strongest possible replay.
        let attn_plan = SimPlan::new(attn_graph.clone(), SimConfig::default()).unwrap();
        let kv = KvTrace {
            lengths: it.slot_ctx.clone(),
        };
        let attn = attn_plan
            .run_bound(&bind_attention(&attn_cfg, &attn_ports, &kv))
            .unwrap();
        assert_eq!(
            attn.cycles, it.attn_cycles,
            "iter {}: attention cycles",
            it.iter
        );

        let moe_plan = SimPlan::new(moe_graph.clone(), moe_sim_config()).unwrap();
        let routing = iteration_routing(model, cfg, it.iter, it.tokens as usize);
        let moe = moe_plan
            .run_bound(&bind_moe(&moe_ports, model.hidden, &routing))
            .unwrap();
        assert_eq!(moe.cycles, it.moe_cycles, "iter {}: MoE cycles", it.iter);

        let qkv = SimPlan::new(
            qkv_graph(model, it.tokens as usize).unwrap(),
            SimConfig::default(),
        )
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(qkv.cycles, it.qkv_cycles, "iter {}: QKV cycles", it.iter);

        assert_eq!(
            qkv.cycles + attn.cycles + moe.cycles,
            it.layer_cycles,
            "iter {}: layer cycles",
            it.iter
        );
        assert_eq!(
            qkv.total_fires() + attn.total_fires() + moe.total_fires(),
            it.fires,
            "iter {}: fires",
            it.iter
        );
        assert_eq!(
            qkv.chan_runs + attn.chan_runs + moe.chan_runs,
            it.chan_runs,
            "iter {}: chan runs",
            it.iter
        );
        assert_eq!(
            qkv.offchip_traffic + attn.offchip_traffic + moe.offchip_traffic,
            it.offchip_traffic,
            "iter {}: off-chip traffic",
            it.iter
        );
    }
    report
}

/// Every driver iteration, replayed offline as fresh one-shot
/// simulations of the same graphs and bindings, reproduces the driver's
/// per-iteration cycles/fires/chan-runs bit-exactly.
#[test]
fn offline_replay_matches_driver_iterations_bit_exactly() {
    replay_offline(
        &tiny_model(),
        &variant(),
        &trace(8, 20_000.0, 9),
        &serve_cfg(),
    );
}

/// Budget starvation replays offline too: a trace engineered so a live
/// prefill slot receives zero tokens must bind the vacant stub — and the
/// offline replay of that iteration (binding the reported `slot_ctx`)
/// must still reproduce the driver bit-exactly.
#[test]
fn starved_prefill_iterations_replay_bit_exactly() {
    use step_traces::Request;
    let req = |id, arrival, prompt, output| Request {
        id,
        arrival,
        prompt,
        output,
    };
    let tr = RequestTrace {
        requests: vec![
            req(0, 0, 1, 10),
            req(1, 0, 1, 2),
            req(2, 0, 8, 1),
            req(3, 1, 4, 1),
        ],
    };
    let cfg = ServeCfg {
        slots: 3,
        token_budget: 3,
        prefill_chunk: Some(2),
        seed: 23,
        ..ServeCfg::default()
    };
    let report = replay_offline(&tiny_model(), &variant(), &tr, &cfg);
    // The starvation witness: iteration 2's slot 2 is live mid-prefill
    // (2 of 8 prompt tokens in) but the decode token plus request 3's
    // admission chunk exhaust the budget, so it binds the 1-tile stub —
    // a value an active prefill prefix can never produce at that point.
    assert_eq!(report.iterations[2].slot_ctx[2], 1);
    assert_eq!(report.outcomes.len(), 4);
}

/// Same-seed serving reports are bit-identical across worker thread
/// counts — the engine's determinism contract extends through the
/// serving loop.
#[test]
fn serving_is_thread_count_independent() {
    let base = serve(&serve_cfg());
    for threads in [2, 4] {
        let r = serve(&ServeCfg {
            threads,
            ..serve_cfg()
        });
        assert_eq!(base, r, "threads={threads} diverged from threads=1");
    }
}

/// Pooled (steady-state alloc-free) and fresh per-iteration run state
/// produce bit-identical serving reports.
#[test]
fn pooled_and_fresh_run_state_agree() {
    let pooled = serve(&ServeCfg {
        pooled: true,
        ..serve_cfg()
    });
    let fresh = serve(&ServeCfg {
        pooled: false,
        ..serve_cfg()
    });
    assert_eq!(pooled, fresh);
}

/// Admission and token-budget invariants hold under overload, and every
/// admitted request eventually completes.
#[test]
fn overload_honors_slots_budget_and_drains() {
    let model = tiny_model();
    let v = variant();
    let tr = trace(20, 2_000.0, 31); // arrivals far faster than service
    let cfg = serve_cfg();
    let r = run_serve(&model, &v, &tr, &cfg).unwrap();
    assert!(!r.truncated);
    let mut live_seen_full = false;
    for it in &r.iterations {
        assert!(it.live as usize <= cfg.slots);
        assert!(it.tokens as usize <= cfg.token_budget);
        assert!(it.decode_tokens <= it.live);
        live_seen_full |= it.live as usize == cfg.slots;
    }
    assert!(live_seen_full, "overload never filled the batch");
    assert_eq!(r.admitted_total, 20);
    assert_eq!(r.evicted_total, 20);
    assert_eq!(r.outcomes.len(), 20);
    // Under overload the offered load exceeds the achieved goodput.
    assert!(r.offered_per_mcycle > r.goodput_per_mcycle);
}
