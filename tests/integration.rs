//! Cross-crate integration tests: the paper's qualitative claims on
//! scaled-down workloads, and consistency between the symbolic frontend,
//! the cycle-approximate simulator, and the fine-grained reference.

use step::core::metrics;
use step::hdl::{RefConfig, pearson, simulate_swiglu};
use step::models::ModelConfig;
use step::models::attention::{AttentionCfg, ParallelStrategy, attention_graph};
use step::models::moe::{MoeCfg, Tiling, expected_weight_traffic, moe_graph};
use step::models::swiglu::{SwigluCfg, swiglu_graph};
use step::sim::{SimConfig, Simulation};
use step::traces::{KvTraceConfig, RoutingConfig, Variability, expert_routing, kv_lengths};
use step_symbolic::Env;

fn small_model() -> ModelConfig {
    ModelConfig {
        name: "small",
        hidden: 128,
        moe_intermediate: 256,
        experts: 8,
        top_k: 2,
        q_heads: 4,
        kv_heads: 2,
        head_dim: 32,
        layers: 2,
    }
}

#[test]
fn symbolic_traffic_matches_simulator_for_static_graphs() {
    // §4.2: for a fully static graph the symbolic frontend's off-chip
    // traffic equation must equal the simulator's measurement exactly.
    let cfg = SwigluCfg::validation(32, 64);
    let graph = swiglu_graph(&cfg).unwrap();
    let (predicted, _) = metrics::analyze(&graph).eval(&Env::new()).unwrap();
    let report = Simulation::new(graph, SimConfig::validation())
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(predicted, report.offchip_traffic);
}

#[test]
fn simulator_tracks_fine_grained_reference() {
    // Fig 8 in miniature: sweep a few tile sizes and require a strong
    // cycle-count correlation between the two simulators plus exact
    // traffic agreement.
    let mut step_cycles = Vec::new();
    let mut ref_cycles = Vec::new();
    for tb in [16u64, 32, 64] {
        for ti in [64u64, 256] {
            let cfg = SwigluCfg::validation(tb, ti);
            let report = Simulation::new(swiglu_graph(&cfg).unwrap(), SimConfig::validation())
                .unwrap()
                .run()
                .unwrap();
            let reference = simulate_swiglu(&cfg, &RefConfig::default());
            assert_eq!(report.offchip_traffic, reference.offchip_bytes);
            step_cycles.push(report.cycles as f64);
            ref_cycles.push(reference.cycles as f64);
        }
    }
    let r = pearson(&step_cycles, &ref_cycles);
    assert!(r > 0.9, "correlation too weak: {r}");
}

#[test]
fn dynamic_tiling_dominates_static_frontier_on_small_moe() {
    // §5.2's qualitative claim: dynamic tiling never loses on traffic and
    // wins on memory against large static tiles.
    let model = small_model();
    let trace = expert_routing(&RoutingConfig {
        experts: model.experts,
        top_k: model.top_k,
        batch: 48,
        skew: 0.9,
        seed: 3,
    });
    let run_one = |tiling| {
        let cfg = MoeCfg::new(model.clone(), tiling);
        let r = Simulation::new(moe_graph(&cfg, &trace).unwrap(), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        (r.cycles, r.offchip_traffic, r.onchip_memory)
    };
    let (dyn_cycles, dyn_traffic, dyn_mem) = run_one(Tiling::Dynamic);
    let (small_cycles, small_traffic, _) = run_one(Tiling::Static { tile: 2 });
    let (_, _, large_mem) = run_one(Tiling::Static { tile: 32 });
    // Small static tiles reload weights more often.
    assert!(small_traffic > dyn_traffic);
    assert!(small_cycles > dyn_cycles);
    // Large static tiles pad rows and hold bigger accumulators.
    assert!(large_mem > dyn_mem);
}

#[test]
fn measured_weight_traffic_matches_reload_model() {
    let model = small_model();
    let trace = expert_routing(&RoutingConfig {
        experts: model.experts,
        top_k: model.top_k,
        batch: 32,
        skew: 0.9,
        seed: 5,
    });
    for tiling in [Tiling::Static { tile: 4 }, Tiling::Dynamic] {
        let cfg = MoeCfg::new(model.clone(), tiling);
        let report = Simulation::new(moe_graph(&cfg, &trace).unwrap(), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(report.offchip_read, expected_weight_traffic(&cfg, &trace));
    }
}

#[test]
fn time_multiplexing_trades_utilization_for_little_latency() {
    // §5.3: sharing a configuration across experts raises compute
    // utilization with bounded slowdown while traffic is unchanged.
    let model = small_model();
    let trace = expert_routing(&RoutingConfig {
        experts: model.experts,
        top_k: model.top_k,
        batch: 32,
        skew: 0.8,
        seed: 9,
    });
    let spatial = {
        let cfg = MoeCfg::new(model.clone(), Tiling::Static { tile: 8 });
        Simulation::new(moe_graph(&cfg, &trace).unwrap(), SimConfig::default())
            .unwrap()
            .run()
            .unwrap()
    };
    let muxed = {
        let cfg = MoeCfg::new(model.clone(), Tiling::Static { tile: 8 }).with_regions(2);
        Simulation::new(moe_graph(&cfg, &trace).unwrap(), SimConfig::default())
            .unwrap()
            .run()
            .unwrap()
    };
    assert_eq!(spatial.offchip_read, muxed.offchip_read);
    assert!(muxed.allocated_compute < spatial.allocated_compute / 2);
    assert!(muxed.compute_utilization() > spatial.compute_utilization());
    assert!(muxed.onchip_memory < spatial.onchip_memory);
}

#[test]
fn dynamic_parallelization_orders_as_in_fig14_and_15() {
    let model = small_model();
    let run_one = |strategy, batch, v: Variability, seed| {
        let kv = kv_lengths(&KvTraceConfig {
            batch,
            variability: v,
            median_len: 384.0,
            max_len: 2048,
            seed,
            ..KvTraceConfig::default()
        });
        let cfg = AttentionCfg::new(model.clone(), strategy);
        Simulation::new(attention_graph(&cfg, &kv).unwrap(), SimConfig::default())
            .unwrap()
            .run()
            .unwrap()
            .cycles
    };
    // Fig 15: at batch == quota, coarse leaves three regions idle.
    let coarse = run_one(
        ParallelStrategy::StaticCoarse { quota: 16 },
        16,
        Variability::Medium,
        11,
    );
    let dynamic = run_one(ParallelStrategy::Dynamic, 16, Variability::Medium, 11);
    assert!(dynamic * 2 < coarse, "dynamic {dynamic} vs coarse {coarse}");
    // Fig 14: under high variance, dynamic beats interleaved.
    let inter = run_one(
        ParallelStrategy::StaticInterleaved,
        32,
        Variability::High,
        13,
    );
    let dyn_hi = run_one(ParallelStrategy::Dynamic, 32, Variability::High, 13);
    assert!(dyn_hi < inter, "dynamic {dyn_hi} vs interleaved {inter}");
}

#[test]
fn reports_are_reproducible_across_runs() {
    let model = small_model();
    let trace = expert_routing(&RoutingConfig {
        experts: model.experts,
        top_k: model.top_k,
        batch: 16,
        skew: 0.8,
        seed: 21,
    });
    let go = || {
        let cfg = MoeCfg::new(model.clone(), Tiling::Dynamic);
        let r = Simulation::new(moe_graph(&cfg, &trace).unwrap(), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        (r.cycles, r.offchip_traffic, r.onchip_memory, r.rounds)
    };
    assert_eq!(go(), go());
}

#[test]
fn scheduler_fires_far_fewer_than_polling_would() {
    // The event-driven engine only fires nodes with a wake reason. A
    // round-robin poller would have fired every live node every round
    // (`nodes × rounds`); require at least a 10x reduction on the MoE
    // graph, whose many mostly-idle expert pipelines are the worst case
    // for polling.
    let model = small_model();
    let trace = expert_routing(&RoutingConfig {
        experts: model.experts,
        top_k: model.top_k,
        batch: 32,
        skew: 0.8,
        seed: 7,
    });
    let cfg = MoeCfg::new(model.clone(), Tiling::Static { tile: 8 });
    let graph = moe_graph(&cfg, &trace).unwrap();
    let nodes = graph.nodes().len() as u64;
    let report = Simulation::new(graph, SimConfig::default())
        .unwrap()
        .run()
        .unwrap();
    let poll_equivalent = nodes * report.rounds;
    assert!(
        report.total_fires() * 10 < poll_equivalent,
        "fires {} vs poll-equivalent {poll_equivalent}",
        report.total_fires()
    );
    // Wasted polls stay a minority of the work done.
    assert!(report.idle_fires() * 2 < report.total_fires());
}
