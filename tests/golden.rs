//! Golden snapshot tests for the example programs.
//!
//! Each example prints a deterministic report (the engine's determinism
//! contract makes this exact across machines and thread counts); the
//! snapshots under `tests/golden/` pin those numbers so refactors
//! cannot silently drift the paper-facing figures. After an intentional
//! change, regenerate with:
//!
//! ```text
//! BLESS=1 cargo test --test golden
//! ```

use std::path::PathBuf;
use std::process::Command;

/// The example binaries live next to the test binary's profile directory
/// (`target/<profile>/examples/`); cargo builds them before running
/// integration tests.
fn example_bin(name: &str) -> PathBuf {
    let exe = std::env::current_exe().expect("test binary path");
    let profile_dir = exe
        .parent() // deps/
        .and_then(|p| p.parent()) // target/<profile>/
        .expect("target profile dir");
    profile_dir.join("examples").join(name)
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

fn check(name: &str) {
    let bin = example_bin(name);
    let out = Command::new(&bin)
        .output()
        .unwrap_or_else(|e| panic!("running {}: {e}", bin.display()));
    assert!(
        out.status.success(),
        "{name} exited with {:?}:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let got = String::from_utf8(out.stdout).expect("utf-8 example output");
    let path = golden_path(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run `BLESS=1 cargo test --test golden`",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "{name} output drifted from its golden snapshot; if intentional, \
         regenerate with `BLESS=1 cargo test --test golden`"
    );
}

#[test]
fn quickstart_matches_golden() {
    check("quickstart");
}

#[test]
fn moe_dynamic_tiling_matches_golden() {
    check("moe_dynamic_tiling");
}

#[test]
fn dse_sweep_matches_golden() {
    check("dse_sweep");
}

#[test]
fn attention_dynamic_parallel_matches_golden() {
    check("attention_dynamic_parallel");
}

#[test]
fn decode_loop_matches_golden() {
    check("decode_loop");
}

#[test]
fn serving_loop_matches_golden() {
    check("serving_loop");
}
