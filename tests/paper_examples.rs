//! The paper's worked examples as executable specifications: equation (1)
//! and Figures 2–5 are each reproduced token-for-token.

use step::core::elem::{Elem, ElemKind, Selector};
use step::core::graph::GraphBuilder;
use step::core::ops::{LinearLoadCfg, StreamifyCfg};
use step::core::shape::{Dim, StreamShape};
use step::core::tile::Tile;
use step::core::token::{self, Token};
use step::sim::{SimConfig, Simulation};

fn addr(x: u64) -> Token {
    Token::Val(Elem::Addr(x))
}

/// Equation (1): `1,2,S1,3,S2,4,S1,5,6,7,S2,D` is a well-formed rank-2
/// stream of shape `[2, 2, D0]`, and flattening its inner dims absorbs
/// the ragged dimension into a fresh symbol.
#[test]
fn example_1_stream_and_ragged_absorption() {
    let tokens = vec![
        addr(1),
        addr(2),
        Token::Stop(1),
        addr(3),
        Token::Stop(2),
        addr(4),
        Token::Stop(1),
        addr(5),
        addr(6),
        addr(7),
        Token::Stop(2),
        Token::Done,
    ];
    let stats = token::validate(&tokens, 2).unwrap();
    assert_eq!(stats.tensors, 2);
    assert_eq!(stats.values, 7);

    // Shape [2, 2, D0~] flattened over (0,1) becomes [2, D0'~], a *new*
    // ragged symbol (the absorbing rule).
    let mut g = GraphBuilder::new();
    let d0 = g.symbols().fresh("D0");
    let shape = StreamShape::new(vec![Dim::fixed(2), Dim::fixed(2), Dim::ragged(d0.clone())]);
    let s = g.source(tokens, shape, ElemKind::Addr).unwrap();
    let f = g.flatten(&s, 0, 1).unwrap();
    assert_eq!(f.shape().rank(), 1);
    let new_dim = f.shape().dim_at_level(0);
    assert!(new_dim.is_ragged());
    assert_ne!(new_dim.expr(), step_symbolic::Expr::Sym(d0));
}

/// Fig 2: a `[64, 256]` tensor stored off-chip, tiled `64x64`, read with
/// stride `(4,1)` and shape `(1,4)`, triggered `D1` times: the output
/// stream has shape `[D1, 1, 4]` of `[64, 64]` tiles, and each trigger
/// re-reads the whole tensor.
#[test]
fn fig2_linear_offchip_load() {
    let d1 = 3u64; // a concrete draw of the dynamic dimension
    let mut g = GraphBuilder::new();
    let reference = g.unit_source(d1);
    let cfg = LinearLoadCfg::new(0x0, (64, 256), (64, 64)).with_view((4, 1), (1, 4));
    let tiles = g.linear_offchip_load(&reference, cfg).unwrap();
    assert_eq!(tiles.shape().rank(), 2);
    assert_eq!(tiles.shape().dim_at_level(1).as_static(), Some(1));
    assert_eq!(tiles.shape().dim_at_level(0).as_static(), Some(4));
    assert_eq!(tiles.kind(), &ElemKind::tile(64, 64));
    let sink = g.sink(&tiles).unwrap();
    let report = Simulation::new(g.finish(), SimConfig::default())
        .unwrap()
        .run()
        .unwrap();
    let toks = report.sink_tokens(sink).unwrap();
    token::validate(toks, 2).unwrap();
    let vals = toks.iter().filter(|t| t.is_val()).count();
    assert_eq!(vals as u64, d1 * 4);
    assert_eq!(report.offchip_read, d1 * 64 * 256 * 2);
}

/// Fig 3: Bufferize with rank 2 over a `[2, D~, 2]` stream yields a `[2]`
/// stream of `[D~, 2]` buffers; Streamify with a `[2, Dreg]` reference
/// re-reads each buffer `Dreg` times, producing `[2, Dreg, D~, 2]`.
#[test]
fn fig3_bufferize_streamify() {
    let mut g = GraphBuilder::new();
    let t = |v: f32| Elem::Tile(Tile::splat(1, 1, v));
    // Buffer 1 holds rows [(1,2)], buffer 2 holds rows [(3,4),(5,6)]
    // (ragged outer bufferized dim).
    let tokens = token::rank2_from_tensors(&[
        vec![vec![t(1.0), t(2.0)]],
        vec![vec![t(3.0), t(4.0)], vec![t(5.0), t(6.0)]],
    ]);
    let drag = g.symbols().fresh("Drag");
    let s = g
        .source(
            tokens,
            StreamShape::new(vec![Dim::fixed(2), Dim::ragged(drag), Dim::fixed(2)]),
            ElemKind::tile(1, 1),
        )
        .unwrap();
    let bufs = g.bufferize(&s, 2).unwrap();
    assert_eq!(bufs.shape().rank(), 0);
    let dreg = 2u64;
    let reference = g
        .source(
            token::rank1_from_groups(&vec![vec![Elem::Unit; dreg as usize]; 2]),
            StreamShape::fixed(&[2, dreg]),
            ElemKind::Unit,
        )
        .unwrap();
    let out = g
        .streamify(&bufs, &reference, StreamifyCfg::default())
        .unwrap();
    assert_eq!(out.shape().rank(), 3);
    let sink = g.sink(&out).unwrap();
    let report = Simulation::new(g.finish(), SimConfig::default())
        .unwrap()
        .run()
        .unwrap();
    let toks = report.sink_tokens(sink).unwrap();
    token::validate(toks, 3).unwrap();
    let vals: Vec<f32> = toks
        .iter()
        .filter_map(|tk| match tk {
            Token::Val(Elem::Tile(t)) => t.get(0, 0),
            _ => None,
        })
        .collect();
    // Each buffer streamed Dreg times.
    assert_eq!(
        vals,
        vec![1.0, 2.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 3.0, 4.0, 5.0, 6.0]
    );
}

/// Fig 4: Reassemble with rank 1 over 8 input streams and the selector
/// sequence `(0,7), (0,1)`. Data is drained chunk-at-a-time without
/// interleaving, and each selector element closes with an incremented
/// stop.
#[test]
fn fig4_reassemble_multi_hot() {
    let mut g = GraphBuilder::new();
    let t = |v: f32| Elem::Tile(Tile::splat(1, 1, v));
    // Streams named per the figure: 0 carries W-chunk then Z-chunk;
    // 1 carries X; 7 carries Y.
    let mut inputs = Vec::new();
    for i in 0..8u32 {
        let chunks: Vec<Vec<Elem>> = match i {
            0 => vec![vec![t(1.0), t(1.0), t(1.0)], vec![t(4.0), t(4.0)]], // W W W, Z Z
            1 => vec![vec![t(2.0)]],                                       // X
            7 => vec![vec![t(3.0), t(3.0)]],                               // Y Y
            _ => vec![],
        };
        let tokens = token::rank1_from_groups(&chunks);
        let n = chunks.len().max(1) as u64;
        let src = if chunks.is_empty() {
            g.source(
                vec![Token::Done],
                StreamShape::fixed(&[0, 1]),
                ElemKind::tile(1, 1),
            )
            .unwrap()
        } else {
            g.source(tokens, StreamShape::fixed(&[n, 3]), ElemKind::tile(1, 1))
                .unwrap()
        };
        inputs.push(src);
    }
    let sel = g
        .selector_source(vec![Selector::multi(&[0, 7]), Selector::multi(&[0, 1])], 8)
        .unwrap();
    let refs: Vec<&_> = inputs.iter().collect();
    let merged = g.reassemble(&refs, &sel, 1).unwrap();
    let sink = g.sink(&merged).unwrap();
    let report = Simulation::new(g.finish(), SimConfig::default())
        .unwrap()
        .run()
        .unwrap();
    let toks = report.sink_tokens(sink).unwrap();
    token::validate(toks, 2).unwrap();
    // Group 1 contains W W W and Y Y in arrival order (never interleaved),
    // group 2 contains Z Z and X. Top-level stops: one S2 per selector.
    let stops: Vec<u8> = toks.iter().filter_map(Token::stop_level).collect();
    assert_eq!(stops.iter().filter(|&&s| s == 2).count(), 2);
    let vals: Vec<f32> = toks
        .iter()
        .filter_map(|tk| match tk {
            Token::Val(Elem::Tile(t)) => t.get(0, 0),
            _ => None,
        })
        .collect();
    assert_eq!(vals.len(), 8);
    // First group: the W-chunk (3 ones) and Y-chunk (2 threes) in some
    // arrival order, not interleaved.
    let g1 = &vals[..5];
    assert!(
        g1 == [1.0, 1.0, 1.0, 3.0, 3.0] || g1 == [3.0, 3.0, 1.0, 1.0, 1.0],
        "{g1:?}"
    );
    // Second group: Z-chunk (2 fours) and X (one two).
    let g2 = &vals[5..];
    assert!(g2 == [4.0, 4.0, 2.0] || g2 == [2.0, 4.0, 4.0], "{g2:?}");
}

/// Fig 5: Expand with rank 2 repeats each input element to fill the
/// reference's `[2, D~, 2]` structure.
#[test]
fn fig5_expand() {
    let mut g = GraphBuilder::new();
    let t = |v: f32| Elem::Tile(Tile::splat(1, 1, v));
    let input = g
        .source(
            vec![
                Token::Val(t(10.0)),
                Token::Stop(2),
                Token::Val(t(20.0)),
                Token::Stop(2),
                Token::Done,
            ],
            StreamShape::fixed(&[2, 1, 1]),
            ElemKind::tile(1, 1),
        )
        .unwrap();
    let reference = g
        .source(
            token::rank2_from_tensors(&[
                vec![vec![Elem::Unit; 2]; 2], // ragged draw: 2 rows
                vec![vec![Elem::Unit; 2]; 1], // ragged draw: 1 row
            ]),
            StreamShape::fixed(&[2, 2, 2]),
            ElemKind::Unit,
        )
        .unwrap();
    let out = g.expand(&input, &reference, 2).unwrap();
    assert_eq!(out.shape().rank(), 2);
    let sink = g.sink(&out).unwrap();
    let report = Simulation::new(g.finish(), SimConfig::default())
        .unwrap()
        .run()
        .unwrap();
    let toks = report.sink_tokens(sink).unwrap();
    token::validate(toks, 2).unwrap();
    let vals: Vec<f32> = toks
        .iter()
        .filter_map(|tk| match tk {
            Token::Val(Elem::Tile(t)) => t.get(0, 0),
            _ => None,
        })
        .collect();
    assert_eq!(vals, vec![10.0, 10.0, 10.0, 10.0, 20.0, 20.0]);
}
