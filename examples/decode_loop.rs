//! Multi-iteration decode on a reused simulation plan — the
//! serving-shaped workload.
//!
//! Builds one `SimPlan` per decoder phase (QKV GEMM, attention, MoE) and
//! steps a batch through successive decode iterations on those plans:
//! per iteration, every request's KV cache grows by one token (the
//! attention plan's request source is rebound with the longer
//! tile-address stream) and expert routing is re-sampled (the MoE plan's
//! router selector source is rebound). Graph construction, partitioning,
//! and channel-topology layout run once per phase — not once per
//! iteration.
//!
//! Run with: `cargo run --release --example decode_loop`

use step::models::ModelConfig;
use step::models::e2e::{DecodeCfg, E2eVariant, run_decode};
use step::traces::Variability;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelConfig::qwen3_30b_a3b();
    let batch = 16usize;
    let variant = E2eVariant::dynamic_schedule(Some(32));
    let cfg = DecodeCfg {
        iterations: 4,
        median_prompt: 512.0,
        variability: Variability::Medium,
        seed: 7,
    };
    println!(
        "{}: batch {batch}, {} decode iterations, {} schedule",
        model.name, cfg.iterations, variant.name
    );

    let report = run_decode(&model, batch, &variant, &cfg)?;
    println!(
        "{:>5} {:>10} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "iter", "kv tokens", "experts", "qkv cyc", "attn cyc", "moe cyc", "layer cyc"
    );
    for it in &report.iterations {
        println!(
            "{:>5} {:>10} {:>8} {:>12} {:>12} {:>12} {:>12}",
            it.iter,
            it.kv_tokens,
            it.active_experts,
            it.qkv_cycles,
            it.attn_cycles,
            it.moe_cycles,
            it.layer_cycles
        );
    }
    println!(
        "\ntotal: {} cycles over {} layers x {} iterations, {} MB off-chip",
        report.total_cycles,
        model.layers,
        cfg.iterations,
        report.offchip_traffic >> 20
    );
    Ok(())
}
