//! Design-space exploration with the symbolic frontend and simulator
//! (§5.6).
//!
//! Uses the symbolic metric equations to rank SwiGLU tile sizes *before*
//! simulating, then verifies the ranking with the cycle-approximate
//! simulator — the DSE workflow the paper describes for hardware that
//! only supports static tiling.
//!
//! Run with: `cargo run --release --example dse_sweep`

use step::core::metrics;
use step::models::swiglu::{SwigluCfg, swiglu_graph};
use step::sim::{SimConfig, SimPlan};
use step_symbolic::Env;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>12} {:>14} {:>14} {:>10}",
        "tile", "pred traffic", "pred onchip", "cycles"
    );
    let mut best: Option<(u64, (u64, u64))> = None;
    for tb in [16u64, 32, 64] {
        for ti in [64u64, 256] {
            let cfg = SwigluCfg::validation(tb, ti);
            let graph = swiglu_graph(&cfg)?;
            // Symbolic prediction: no simulation required.
            let (traffic, onchip) = metrics::analyze(&graph).eval(&Env::new())?;
            // Simulator confirmation.
            let report = SimPlan::new(graph, SimConfig::validation())?.run()?;
            println!(
                "{:>12} {traffic:>14} {onchip:>14} {:>10}",
                format!("({tb},{ti})"),
                report.cycles
            );
            if best.is_none_or(|(c, _)| report.cycles < c) {
                best = Some((report.cycles, (tb, ti)));
            }
        }
    }
    let (cycles, (tb, ti)) = best.expect("swept at least one point");
    println!("\nfastest static tile: ({tb},{ti}) at {cycles} cycles");
    Ok(())
}
