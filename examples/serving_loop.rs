//! Continuous-batching serving over a seeded arrival trace.
//!
//! Generates a Poisson request-arrival trace (seeded — every run of
//! this example sees the same workload), then drives it through the
//! serving loop: requests are admitted into batch slots as they arrive,
//! prefill is chunked and interleaved with decode under a per-iteration
//! token budget, finished requests are evicted, and every iteration's
//! batch composition is rebound onto one frozen plan per decoder phase.
//! Prints the per-iteration schedule (who is in the batch, what it
//! costs) and the per-request latency outcomes (TTFT / TPOT), plus the
//! aggregate serving metrics.
//!
//! Run with: `cargo run --release --example serving_loop`

use step::models::ModelConfig;
use step::models::e2e::E2eVariant;
use step::models::serving::{Percentiles, ServeCfg, run_serve};
use step::traces::{ArrivalConfig, ArrivalPattern, LenDist, arrival_trace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deliberately small model so the example runs in seconds even in
    // debug builds; the serving mechanics are identical at scale.
    let model = ModelConfig {
        name: "toy-moe",
        hidden: 128,
        moe_intermediate: 256,
        experts: 4,
        top_k: 2,
        q_heads: 4,
        kv_heads: 2,
        head_dim: 32,
        layers: 4,
    };
    let variant = E2eVariant::static_schedule("Static", 4);
    let trace = arrival_trace(&ArrivalConfig {
        requests: 10,
        mean_interarrival: 60_000.0,
        pattern: ArrivalPattern::Poisson,
        prompt: LenDist::new(48.0, 0.5, 16, 96),
        output: LenDist::new(4.0, 0.4, 2, 8),
        seed: 42,
    });
    let cfg = ServeCfg {
        slots: 4,
        token_budget: 24,
        prefill_chunk: Some(16),
        seed: 42,
        ..ServeCfg::default()
    };
    println!(
        "{}: {} requests over {} cycles, {} slots, token budget {}, prefill chunk {:?}",
        model.name,
        trace.requests.len(),
        trace.span(),
        cfg.slots,
        cfg.token_budget,
        cfg.prefill_chunk,
    );

    let report = run_serve(&model, &variant, &trace, &cfg)?;
    println!(
        "\n{:>5} {:>10} {:>5} {:>4} {:>4} {:>7} {:>7} {:>10} {:>12}",
        "iter", "start", "live", "adm", "done", "tokens", "decode", "layer cyc", "slot ctx"
    );
    for it in &report.iterations {
        println!(
            "{:>5} {:>10} {:>5} {:>4} {:>4} {:>7} {:>7} {:>10} {:>12}",
            it.iter,
            it.start,
            it.live,
            it.admitted,
            it.completed,
            it.tokens,
            it.decode_tokens,
            it.layer_cycles,
            format!("{:?}", it.slot_ctx),
        );
    }

    println!(
        "\n{:>3} {:>10} {:>10} {:>12} {:>12} {:>7} {:>7} {:>10} {:>10}",
        "req", "arrival", "admitted", "first tok", "finished", "prompt", "output", "ttft", "tpot"
    );
    for o in &report.outcomes {
        println!(
            "{:>3} {:>10} {:>10} {:>12} {:>12} {:>7} {:>7} {:>10} {:>10.0}",
            o.id,
            o.arrival,
            o.admitted,
            o.first_token,
            o.finished,
            o.prompt,
            o.output,
            o.ttft(),
            o.tpot(),
        );
    }

    println!(
        "\nserved {} requests in {} cycles over {} iterations ({} admitted, {} evicted)",
        report.outcomes.len(),
        report.total_cycles,
        report.iterations.len(),
        report.admitted_total,
        report.evicted_total,
    );
    // An absent percentile set is an empty population (e.g. no
    // multi-token outputs for TPOT), not a zero latency.
    let pc = |p: &Option<Percentiles>| {
        p.as_ref().map_or_else(
            || "n/a".to_string(),
            |p| format!("{:.0}/{:.0}/{:.0}", p.p50, p.p95, p.p99),
        )
    };
    println!(
        "ttft p50/p95/p99: {} cycles, tpot p50/p95/p99: {}",
        pc(&report.ttft),
        pc(&report.tpot),
    );
    println!(
        "goodput {:.2}/Mcyc vs offered {:.2}/Mcyc, HBM {:.1} B/cyc ({:.1}% of peak)",
        report.goodput_per_mcycle,
        report.offered_per_mcycle,
        report.hbm_bytes_per_cycle,
        report.hbm_utilization * 100.0,
    );
    Ok(())
}
