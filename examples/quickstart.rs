//! Quickstart: build a tiny STeP program, run it on the simulator, and
//! inspect both functional output and performance metrics.
//!
//! The program loads a 64x256 matrix from off-chip memory in 64x64 tiles,
//! applies ReLU, and stores the result — the "hello world" of explicit
//! memory-hierarchy streaming.
//!
//! Run with: `cargo run --example quickstart`

use step::core::func::{EwOp, MapFn};
use step::core::graph::GraphBuilder;
use step::core::metrics;
use step::core::ops::LinearLoadCfg;
use step::sim::{RunBinding, SimConfig, SimPlan};
use step_symbolic::Env;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the program graph. Shapes are inferred and verified as
    //    each operator is added (the symbolic frontend of §4.1).
    let mut g = GraphBuilder::new();
    let trigger = g.unit_source(1);
    let tiles = g.linear_offchip_load(&trigger, LinearLoadCfg::new(0x1000, (64, 256), (64, 64)))?;
    println!("loaded stream shape: {}", tiles.shape());
    let relu = g.map(&tiles, MapFn::Elementwise(EwOp::Relu), 1024)?;
    let sink = g.sink(&relu)?;
    g.linear_offchip_store(&relu, 0x9000).ok(); // relu already consumed: demonstrate the error
    let graph = g.finish();

    // 2. Symbolic metrics before running anything (§4.2): off-chip
    //    traffic and on-chip memory requirement.
    let analysis = metrics::analyze(&graph);
    let (traffic, memory) = analysis.eval(&Env::new())?;
    println!("predicted off-chip traffic: {traffic} bytes");
    println!("predicted on-chip memory:   {memory} bytes");

    // 3. Simulate with real data to see functional results. The plan
    //    (partition + channel topology) is immutable and reusable; the
    //    per-run binding carries the preloaded tensor.
    let plan = SimPlan::new(graph, SimConfig::default())?;
    let mut binding = RunBinding::new();
    binding.preload(
        0x1000,
        64,
        256,
        (0..64 * 256).map(|i| (i as f32 % 7.0) - 3.0).collect(),
    );
    let report = plan.run_bound(&binding)?;
    println!("cycles: {}", report.cycles);
    println!(
        "measured off-chip traffic: {} bytes",
        report.offchip_traffic
    );

    // The sink recorded the ReLU'd tiles: all values non-negative.
    let tokens = report.sink_tokens(sink)?;
    let negatives = tokens
        .iter()
        .filter_map(|t| match t {
            step::core::Token::Val(step::core::Elem::Tile(t)) => t.values(),
            _ => None,
        })
        .flatten()
        .filter(|v| **v < 0.0)
        .count();
    println!("negative outputs after ReLU: {negatives}");
    assert_eq!(negatives, 0);
    Ok(())
}
