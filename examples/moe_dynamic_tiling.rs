//! Dynamic tiling on a Mixture-of-Experts layer (§5.2).
//!
//! Builds the Qwen3-30B-A3B MoE layer twice — once with static batch
//! tiling and once with dynamic tiling — over the same expert-routing
//! trace, and compares latency, off-chip traffic, and measured on-chip
//! memory. Dynamic tiling loads each active expert's weights exactly
//! once and keeps accumulators sized to the routed rows.
//!
//! Run with: `cargo run --release --example moe_dynamic_tiling`

use step::models::ModelConfig;
use step::models::moe::{MoeCfg, Tiling, expected_weight_traffic, moe_graph};
use step::sim::{SimConfig, SimPlan};
use step::traces::{RoutingConfig, expert_routing};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelConfig::qwen3_30b_a3b();
    let trace = expert_routing(&RoutingConfig {
        experts: model.experts,
        top_k: model.top_k,
        batch: 64,
        skew: 0.8,
        seed: 7,
    });
    println!(
        "routing: {} tokens x top-{} over {} experts, {} active, bin sigma {:.1}",
        trace.assignments.len(),
        model.top_k,
        model.experts,
        trace.active_experts(),
        trace.bin_std_dev()
    );

    for tiling in [
        Tiling::Static { tile: 8 },
        Tiling::Static { tile: 64 },
        Tiling::Dynamic,
    ] {
        let cfg = MoeCfg::new(model.clone(), tiling);
        let predicted = expected_weight_traffic(&cfg, &trace);
        let graph = moe_graph(&cfg, &trace)?;
        let report = SimPlan::new(graph, SimConfig::default())?.run()?;
        println!(
            "{tiling:>12}: cycles {:>9}  traffic {:>6} MB (predicted weights {:>6} MB)  onchip {:>6} KB",
            report.cycles,
            report.offchip_traffic >> 20,
            predicted >> 20,
            report.onchip_memory >> 10,
        );
    }
    Ok(())
}
