//! Dynamic parallelization of decode attention (§5.4, Fig 16).
//!
//! Samples a batch of requests with highly variable KV-cache lengths and
//! dispatches them over four parallel attention regions using all three
//! strategies. The dynamic strategy's Fig 16 feedback graph (completion
//! signals merged back into the dispatcher's selector) load-balances like
//! greedy list scheduling.
//!
//! Run with: `cargo run --release --example attention_dynamic_parallel`

use step::models::ModelConfig;
use step::models::attention::{AttentionCfg, ParallelStrategy, attention_graph};
use step::sim::{SimConfig, SimPlan};
use step::traces::{KvTraceConfig, Variability, kv_lengths};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelConfig::qwen3_30b_a3b();
    let kv = kv_lengths(&KvTraceConfig {
        batch: 64,
        variability: Variability::High,
        median_len: 1024.0,
        seed: 29,
        ..KvTraceConfig::default()
    });
    println!(
        "batch of {} requests, KV lengths {}..{} (sigma {:.0})",
        kv.lengths.len(),
        kv.lengths.iter().min().unwrap(),
        kv.lengths.iter().max().unwrap(),
        kv.std_dev()
    );

    let mut baseline = None;
    for strategy in [
        ParallelStrategy::StaticCoarse { quota: 16 },
        ParallelStrategy::StaticInterleaved,
        ParallelStrategy::Dynamic,
    ] {
        let cfg = AttentionCfg::new(model.clone(), strategy);
        let report = SimPlan::new(attention_graph(&cfg, &kv)?, SimConfig::default())?.run()?;
        let base = *baseline.get_or_insert(report.cycles);
        println!(
            "{strategy:>17}: {:>8} cycles  (speedup vs coarse {:.2}x, off-chip BW util {:.1}%)",
            report.cycles,
            base as f64 / report.cycles as f64,
            report.offchip_bw_utilization() * 100.0
        );
    }
    Ok(())
}
