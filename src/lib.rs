//! Streaming Tensor Programs (STeP) — facade crate.
//!
//! Re-exports the workspace crates under one roof:
//!
//! - [`core`]: the streaming abstraction (tokens, shapes, operators,
//!   graph builder, symbolic metrics);
//! - [`sim`]: the cycle-approximate simulator;
//! - [`hdl`]: the fine-grained validation reference;
//! - [`models`]: SwiGLU / MoE / attention / end-to-end layer builders;
//! - [`traces`]: synthetic KV-length and expert-routing workloads;
//! - [`symbolic`]: the symbolic integer-expression engine.
//!
//! See the `examples/` directory for runnable walkthroughs, starting
//! with `quickstart`.

pub use step_core as core;
pub use step_hdl as hdl;
pub use step_models as models;
pub use step_sim as sim;
pub use step_symbolic as symbolic;
pub use step_traces as traces;
